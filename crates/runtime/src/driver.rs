//! Kernel-space CIM driver model.
//!
//! "At the lowest level of the stack, the kernel-space CIM driver reads
//! and writes to the context registers of the accelerator through a ioctl
//! system call. Besides, the driver translates the virtual address used by
//! the host processor to a physical address [...]. To enforce memory
//! coherence in the shared memory region, the kernel driver triggers a
//! cache flush on the host side before invoking the accelerator. [...]
//! The host can either wait on spinlock or continue with other tasks and
//! check the status of such register periodically" (Sections II-E, III).
//!
//! Every driver action is priced in host instructions (which the paper's
//! host energy model converts to energy at 128 pJ/inst). These overheads
//! are precisely what makes low-intensity GEMV-like kernels lose from
//! offloading in Fig. 6.

use cim_accel::regs::{Reg, Status};
use cim_accel::{AccelConfig, CimAccelerator, DeviceKind, GridRegion, MAX_DMA_CHANNELS};
use cim_machine::cpu::InstClass;
use cim_machine::units::SimTime;
use cim_machine::Machine;

use crate::error::CimError;
use crate::reactor::{CmdRecord, Reactor};

/// How the host waits for accelerator completion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WaitPolicy {
    /// Busy-wait on the status register: the core burns ~1 inst/cycle for
    /// the whole accelerator run (paper default; counted in Fig. 6's
    /// "energy spent on the driver (host side)").
    #[default]
    Spin,
    /// WFE-style waiting: the clock advances without retiring
    /// instructions, except for a periodic status poll.
    Poll {
        /// Interval between status reads. Must be positive; see
        /// [`DriverConfig::validate`].
        interval: SimTime,
        /// Instructions per poll (wake, uncached load, compare, branch).
        insts_per_poll: u64,
    },
}

/// Smallest poll interval the wait path will honor, in nanoseconds:
/// below this the "sleep" degenerates into a spin and the poll-count
/// arithmetic divides by (nearly) zero, so [`CimDriver`] clamps to it
/// defensively even if a caller mutates the config after construction.
pub const MIN_POLL_INTERVAL_NS: f64 = 1.0;

/// How runtime calls reach the accelerator.
///
/// The paper's host "can either wait on spinlock or continue with other
/// tasks and check the status of such register periodically" (Section
/// III-B); `Sync` is the first half of that sentence, `Async` the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Every invocation blocks the host until the accelerator finishes
    /// (the historical behavior).
    #[default]
    Sync,
    /// Invocations return a completion handle immediately; the host
    /// overlaps other work and pays only the *remaining* wait when it
    /// synchronizes ([`CimDriver::sync`] / [`crate::CimContext::cim_sync`]).
    Async,
}

/// What the pre-invocation cache flush covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushMode {
    /// Flush only the lines of the shared buffers involved in the call.
    #[default]
    Ranges,
    /// Flush the entire hierarchy (simplest driver, worst overhead).
    Full,
}

/// Instruction-cost parameters of the driver paths, plus the device-tree
/// style overrides the driver applies to the accelerator it binds
/// (device technology and tile-grid shape — the two sweep knobs of
/// `docs/DEVICES.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Instructions per `ioctl` round trip (syscall + driver dispatch).
    pub ioctl_insts: u64,
    /// Instructions per context-register access beyond the bus time.
    pub reg_access_insts: u64,
    /// Instructions for the CMA allocation path.
    pub malloc_insts: u64,
    /// Fixed instructions to set up a flush loop.
    pub flush_base_insts: u64,
    /// Wait policy.
    pub wait: WaitPolicy,
    /// Dispatch mode: blocking invocations or submit/sync overlap.
    pub dispatch: DispatchMode,
    /// Flush coverage.
    pub flush: FlushMode,
    /// Device-model override: when set, the context re-derives the
    /// accelerator's cell/ADC/energy parameters from this technology
    /// (see [`cim_accel::AccelConfig::with_device`]).
    pub device: Option<DeviceKind>,
    /// Tile-grid override `(k_tiles, m_tiles)`: when set, the context
    /// reshapes the accelerator's tile array.
    pub tile_grid: Option<(usize, usize)>,
    /// Completion reactor: batch status reads across all in-flight
    /// commands through ring-buffer submission/completion queues (the
    /// default). When off, every [`CimDriver::sync`] runs its own
    /// per-future wait loop against the status register — the
    /// pre-reactor behavior, kept as the differential-test reference.
    pub reactor: bool,
    /// Slots in each reactor ring. Submissions finding the ring full
    /// stall the host (counted in [`DriverStats::queue_full_stalls`])
    /// until the pinning command's doorbell is claimed.
    pub queue_capacity: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            ioctl_insts: 1500,
            reg_access_insts: 3,
            malloc_insts: 2000,
            flush_base_insts: 200,
            wait: WaitPolicy::Spin,
            dispatch: DispatchMode::Sync,
            flush: FlushMode::Ranges,
            device: None,
            tile_grid: None,
            reactor: true,
            queue_capacity: 64,
        }
    }
}

impl DriverConfig {
    /// Checks the configuration for values the wait path cannot honor.
    ///
    /// # Errors
    ///
    /// [`CimError::InvalidArg`] for a [`WaitPolicy::Poll`] interval below
    /// [`MIN_POLL_INTERVAL_NS`] — a zero interval would divide the poll
    /// count by zero and bill infinite poll instructions — or for a
    /// zero [`DriverConfig::queue_capacity`], which could never admit a
    /// submission.
    pub fn validate(&self) -> Result<(), CimError> {
        if let WaitPolicy::Poll { interval, .. } = self.wait {
            if interval.as_ns() < MIN_POLL_INTERVAL_NS {
                return Err(CimError::InvalidArg(format!(
                    "poll interval {interval} is below the {MIN_POLL_INTERVAL_NS} ns minimum"
                )));
            }
        }
        if self.queue_capacity == 0 {
            return Err(CimError::InvalidArg(
                "queue_capacity must hold at least one command".into(),
            ));
        }
        Ok(())
    }

    /// Applies the driver's device/tile overrides to an accelerator
    /// configuration (identity when both are `None`).
    pub fn apply_overrides(&self, cfg: AccelConfig) -> AccelConfig {
        let cfg = match self.device {
            Some(kind) => cfg.with_device(kind),
            None => cfg,
        };
        match self.tile_grid {
            Some((gk, gm)) => cfg.with_grid(gk, gm),
            None => cfg,
        }
    }
}

/// Cumulative driver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriverStats {
    /// ioctl round trips.
    pub ioctls: u64,
    /// Context-register accesses.
    pub reg_accesses: u64,
    /// Cache lines flushed (valid).
    pub flush_lines: u64,
    /// Cache lines flushed that were dirty (written back).
    pub flush_dirty: u64,
    /// Wait time the host spent *spinning* on the status register —
    /// retired instructions, billed at pJ/inst (the Fig. 3 host-side
    /// driver energy).
    pub busy_wait_time: SimTime,
    /// Wait time the host spent *idle* (WFE between polls) — the clock
    /// advances but almost no instructions retire, so this time is
    /// nearly free in host energy.
    pub idle_wait_time: SimTime,
    /// Number of accelerator invocations (submits included).
    pub invocations: u64,
    /// Completion-status reads of any kind: PMIO status-register reads
    /// plus batched completion-queue head reads. The reactor's win is
    /// this counter collapsing — one CQ read services every in-flight
    /// command where the per-future wait loops each paid their own.
    pub status_reads: u64,
    /// Batched completion-queue sweeps the reactor performed.
    pub batched_polls: u64,
    /// Completions delivered by those sweeps (ratio to
    /// [`DriverStats::batched_polls`] = completions per poll).
    pub completions_polled: u64,
    /// Submissions that found the submission ring full and stalled the
    /// host until a slot freed (queue-full backpressure).
    pub queue_full_stalls: u64,
    /// Cumulative busy time of each per-tile DMA channel, mirrored from
    /// the accelerator at every reactor sweep. Channels beyond
    /// `AccelConfig::dma_channels` stay zero.
    pub dma_channel_busy: [SimTime; MAX_DMA_CHANNELS],
}

impl DriverStats {
    /// Total time the host spent waiting on the accelerator, regardless
    /// of how (spinning or idling).
    pub fn total_wait_time(&self) -> SimTime {
        self.busy_wait_time + self.idle_wait_time
    }
}

/// Completion handle for a command dispatched with [`CimDriver::submit`]:
/// the driver's prediction of when the accelerator will flip its status
/// register, plus the command's busy time. Plain data — dropping it
/// without waiting leaks nothing (the queue entry retires on the next
/// [`CimDriver::sync`] sweep), but the host then never charges itself
/// the residual wait, so well-behaved callers always sync.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CimFuture {
    /// Logical command id ([`CimAccelerator::last_cmd`]).
    pub cmd_id: u64,
    /// Host time at submission.
    pub submitted_at: SimTime,
    /// Predicted completion time (start + busy; start may be later than
    /// submission when earlier in-flight commands occupy the tiles).
    pub ready_at: SimTime,
    /// Accelerator busy time of the command itself.
    pub busy: SimTime,
}

impl CimFuture {
    /// Blocks the host until the command completes, applying the
    /// driver's [`WaitPolicy`] to whatever wait remains after overlapped
    /// host work. Sugar for [`CimDriver::sync`].
    ///
    /// # Errors
    ///
    /// As for [`CimDriver::sync`].
    pub fn wait(
        &self,
        mach: &mut Machine,
        drv: &mut CimDriver,
        acc: &mut CimAccelerator,
    ) -> Result<SimTime, CimError> {
        drv.sync(mach, acc, self)
    }
}

/// One in-flight command as the dispatch queue sees it: its completion
/// handle, the tile region it occupies, and the physical ranges it reads
/// and writes — the node of the runtime-side offload dataflow graph.
#[derive(Debug, Clone)]
struct InflightCmd {
    future: CimFuture,
    region: GridRegion,
    reads: Vec<(u64, u64)>,
    writes: Vec<(u64, u64)>,
}

fn ranges_overlap(xs: &[(u64, u64)], ys: &[(u64, u64)]) -> bool {
    xs.iter().any(|&x| ys.iter().any(|&y| crate::ranges::overlaps(x, y)))
}

/// In-flight command bookkeeping: which tile regions are busy until
/// when, and which physical ranges each command touches. A new
/// submission starts only after every in-flight command it conflicts
/// with — commands whose tiles overlap (they share physical crossbars),
/// or commands with a PA-range data dependence (the newcomer writes
/// something they touch, or reads something they write). Independent
/// commands on disjoint regions overlap freely: this per-region doorbell
/// is what lets *separate* runtime calls (not just elements of one
/// batched call) run concurrently.
#[derive(Debug, Clone, Default)]
pub struct DispatchQueue {
    inflight: Vec<InflightCmd>,
}

impl DispatchQueue {
    /// Earliest time a command occupying `region` and touching
    /// `reads`/`writes` may start, given the current host time and
    /// conflicting in-flight commands.
    pub fn earliest_start(
        &self,
        region: GridRegion,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
        now: SimTime,
    ) -> SimTime {
        self.inflight
            .iter()
            .filter(|c| {
                c.region.overlaps(&region)
                    || ranges_overlap(writes, &c.writes)
                    || ranges_overlap(writes, &c.reads)
                    || ranges_overlap(reads, &c.writes)
            })
            .fold(now, |t, c| t.max(c.future.ready_at))
    }

    /// Records a submitted command.
    pub fn push(
        &mut self,
        future: CimFuture,
        region: GridRegion,
        reads: Vec<(u64, u64)>,
        writes: Vec<(u64, u64)>,
    ) {
        self.inflight.push(InflightCmd { future, region, reads, writes });
    }

    /// Sum of region tiles of the commands *running* at `when` — already
    /// started, not yet done. Commands merely queued behind their
    /// region's chain do not occupy tiles yet.
    pub fn tiles_busy_at(&self, when: SimTime) -> u64 {
        self.inflight
            .iter()
            .filter(|c| c.future.ready_at > when && c.future.ready_at - c.future.busy <= when)
            .map(|c| c.region.tiles() as u64)
            .sum()
    }

    /// Drops a completed command (and everything predicted done by
    /// `now`, which can no longer constrain a future submission).
    pub fn retire(&mut self, cmd_id: u64, now: SimTime) {
        self.inflight.retain(|c| c.future.cmd_id != cmd_id && c.future.ready_at > now);
    }

    /// Commands currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

/// The kernel driver.
#[derive(Debug, Clone)]
pub struct CimDriver {
    cfg: DriverConfig,
    stats: DriverStats,
    queue: DispatchQueue,
    reactor: Reactor,
}

impl Default for CimDriver {
    fn default() -> Self {
        CimDriver::new(DriverConfig::default())
    }
}

impl CimDriver {
    /// Creates a driver with the given cost configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DriverConfig::validate`]
    /// (e.g. a zero [`WaitPolicy::Poll`] interval).
    pub fn new(cfg: DriverConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid driver configuration: {e}");
        }
        CimDriver {
            cfg,
            stats: DriverStats::default(),
            queue: DispatchQueue::default(),
            reactor: Reactor::new(cfg.queue_capacity),
        }
    }

    /// The dispatch queue (in-flight command inspection).
    pub fn queue(&self) -> &DispatchQueue {
        &self.queue
    }

    /// The completion reactor (ring-state inspection).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Charges one ioctl round trip to the host.
    pub fn ioctl(&mut self, mach: &mut Machine) {
        self.stats.ioctls += 1;
        mach.core.retire(InstClass::Other, self.cfg.ioctl_insts);
    }

    /// Charges the CMA allocation path.
    pub fn charge_malloc(&mut self, mach: &mut Machine) {
        mach.core.retire(InstClass::Other, self.cfg.malloc_insts);
    }

    /// Translates a user virtual address for the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::InvalidPointer`] for unmapped addresses.
    pub fn translate(&self, mach: &Machine, va: u64) -> Result<u64, CimError> {
        mach.mmu.translate(va).map_err(|e| CimError::InvalidPointer(e.va))
    }

    /// Writes a batch of context registers over PMIO.
    pub fn write_regs(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
        regs: &[(Reg, u64)],
    ) {
        for (r, v) in regs {
            acc.pmio_write(*r, *v);
            let t = mach.bus.pmio_access();
            mach.core.idle_wait(t);
            mach.core.retire(InstClass::Store, 1);
            mach.core.retire(InstClass::IntAlu, self.cfg.reg_access_insts - 1);
            self.stats.reg_accesses += 1;
        }
    }

    /// Reads a context register over PMIO.
    pub fn read_reg(&mut self, mach: &mut Machine, acc: &CimAccelerator, r: Reg) -> u64 {
        let t = mach.bus.pmio_access();
        mach.core.idle_wait(t);
        mach.core.retire(InstClass::Load, 1);
        mach.core.retire(InstClass::IntAlu, self.cfg.reg_access_insts - 1);
        self.stats.reg_accesses += 1;
        acc.pmio_read(r)
    }

    /// Flushes the host caches for the given physical ranges (or the whole
    /// hierarchy under [`FlushMode::Full`]), charging per-line work.
    pub fn flush_shared(&mut self, mach: &mut Machine, ranges: &[(u64, u64)]) {
        let (valid, dirty) = match self.cfg.flush {
            FlushMode::Full => mach.hier.flush_all(),
            FlushMode::Ranges => {
                let mut v = 0;
                let mut d = 0;
                for (pa, len) in ranges {
                    let (rv, rd) = mach.hier.flush_range(*pa, *len);
                    v += rv;
                    d += rd;
                }
                (v, d)
            }
        };
        self.stats.flush_lines += valid;
        self.stats.flush_dirty += dirty;
        // DC CIVAC loop: address generation + flush op per line, plus the
        // loop walking the range even over non-resident lines.
        let line = mach.cfg.l1d.line_bytes;
        let walked: u64 = match self.cfg.flush {
            FlushMode::Full => mach.cfg.l2.size_bytes / line,
            FlushMode::Ranges => ranges.iter().map(|(_, len)| len.div_ceil(line)).sum(),
        };
        let insts = self.cfg.flush_base_insts + walked * mach.cfg.flush_insts_per_line;
        mach.core.retire(InstClass::Other, insts);
    }

    /// Charges a polled wait of `remaining` to the host: the core idles
    /// between periodic wake-ups and the wake-up instructions overlap
    /// the wait window, so exactly `remaining` elapses. (The historical
    /// accounting appended the poll instructions *after* the idle wait,
    /// so a wait completing on its first status read still overshot the
    /// completion instant by a full poll's instruction time.) Returns
    /// the number of polls; the caller bills the status reads.
    fn charge_polled_wait(
        &mut self,
        mach: &mut Machine,
        remaining: SimTime,
        interval: SimTime,
        insts_per_poll: u64,
    ) -> u64 {
        // Clamped defensively: see `MIN_POLL_INTERVAL_NS`.
        let iv_ns = interval.as_ns().max(MIN_POLL_INTERVAL_NS);
        let polls = (remaining.as_ns() / iv_ns).ceil().max(1.0) as u64;
        let before = mach.core.elapsed();
        mach.core.retire(InstClass::Other, polls * insts_per_poll);
        let inst_time = mach.core.elapsed() - before;
        if remaining > inst_time {
            mach.core.idle_wait(remaining - inst_time);
        }
        self.stats.idle_wait_time += remaining;
        polls
    }

    /// One batched host sweep of the completion queue, billed as
    /// `polls` status reads: the device model retires everything due by
    /// `horizon` and all fresh doorbells are delivered at once.
    fn poll_reactor(&mut self, acc: &CimAccelerator, horizon: SimTime, polls: u64) {
        let delivered = self.reactor.poll(horizon);
        self.stats.batched_polls += polls;
        self.stats.status_reads += polls;
        self.stats.completions_polled += delivered as u64;
        for (slot, t) in self.stats.dma_channel_busy.iter_mut().zip(acc.dma_channel_busy()) {
            *slot = *t;
        }
    }

    /// Blocks the host until the submission ring can admit another
    /// command — queue-full backpressure. Each stall waits (per the
    /// configured policy) for the in-flight command pinning the needed
    /// slot, then sweeps the completion queue to free it.
    fn admit(&mut self, mach: &mut Machine, acc: &CimAccelerator) {
        while !self.reactor.can_submit() {
            self.stats.queue_full_stalls += 1;
            let wake = self
                .reactor
                .blocking_ready_at()
                .expect("a full submission ring implies an in-flight pinning command");
            let now = mach.now();
            let mut polls = 1;
            if wake > now {
                let remaining = wake - now;
                match self.cfg.wait {
                    WaitPolicy::Spin => {
                        mach.core.spin_wait(remaining);
                        self.stats.busy_wait_time += remaining;
                    }
                    WaitPolicy::Poll { interval, insts_per_poll } => {
                        polls = self.charge_polled_wait(mach, remaining, interval, insts_per_poll);
                    }
                }
            }
            // Cycle-granular waits can land a fraction of a cycle short
            // of `wake`; sweep at the later of the two so the pinning
            // command's doorbell is guaranteed to post.
            self.poll_reactor(acc, mach.now().max(wake), polls);
        }
    }

    /// Triggers the armed command without waiting for it: the command
    /// executes (functionally) at submission, the dispatch queue records
    /// when the modeled hardware will actually be done — after any
    /// in-flight command whose tiles it needs — and the host is free to
    /// "continue with other tasks" ([`Machine::advance_host`]) until it
    /// pays the *remaining* wait in [`CimDriver::sync`]. Occupies the
    /// full tile grid; [`CimDriver::submit_region`] is the per-region
    /// doorbell variant.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::Device`] if the engine flagged an error (the
    /// command then never entered the queue).
    pub fn submit(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
    ) -> Result<CimFuture, CimError> {
        let region = GridRegion::full(acc.config().grid);
        self.submit_region(mach, acc, region, &[], &[])
    }

    /// As [`CimDriver::submit`], but the command occupies only `region`
    /// (which the caller must also have armed via
    /// [`cim_accel::regs::Reg::Region`]) and declares the physical
    /// ranges it reads and writes. The dispatch queue holds the command
    /// behind in-flight work it conflicts with — shared tiles or a
    /// PA-range data dependence — and lets it overlap everything else,
    /// so separate runtime calls on disjoint regions run concurrently.
    ///
    /// # Errors
    ///
    /// As for [`CimDriver::submit`].
    pub fn submit_region(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
        region: GridRegion,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
    ) -> Result<CimFuture, CimError> {
        self.stats.invocations += 1;
        if self.cfg.reactor {
            // The doorbell cannot ring until the submission ring has a
            // slot: a full ring stalls the host first, which pushes the
            // start instant (and everything behind it) later.
            self.admit(mach, acc);
        }
        let now = mach.now();
        let start = self.queue.earliest_start(region, reads, writes, now);
        let dur = acc.execute_at(mach, start);
        if acc.regs().status() == Status::Error {
            let e = acc.last_error().cloned().expect("error status implies last_error");
            return Err(CimError::Device(e));
        }
        // Commands still running at our start instant are, by
        // construction, conflict-free with us — disjoint sub-regions
        // whose tile counts are exact. Account the cross-command
        // concurrency (the engine only sees inside a single command).
        let busy = self.queue.tiles_busy_at(start);
        if busy > 0 {
            acc.note_tiles_active(busy + region.tiles() as u64);
        }
        let future = CimFuture {
            cmd_id: acc.last_cmd(),
            submitted_at: now,
            ready_at: start + dur,
            busy: dur,
        };
        if self.cfg.reactor {
            let rec = CmdRecord { cmd_id: future.cmd_id, ready_at: future.ready_at, busy: dur };
            self.reactor.submit(rec).expect("admit() guaranteed a free submission slot");
        }
        self.queue.push(future, region, reads.to_vec(), writes.to_vec());
        Ok(future)
    }

    /// Waits for a submitted command, applying the [`WaitPolicy`] only
    /// to the time remaining after whatever host work overlapped the
    /// accelerator run — zero when the host caught up late. Spun wait
    /// time lands in [`DriverStats::busy_wait_time`], polled (idle) wait
    /// in [`DriverStats::idle_wait_time`]. Returns the command's
    /// accelerator busy time.
    ///
    /// # Errors
    ///
    /// Kept fallible for parity with [`CimDriver::invoke`]; the command
    /// itself already succeeded at submission.
    pub fn sync(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
        future: &CimFuture,
    ) -> Result<SimTime, CimError> {
        if self.cfg.reactor && self.reactor.claim(future.cmd_id) {
            // An earlier batched sweep already delivered this command's
            // doorbell: the completion record sits in host memory, so
            // the sync costs nothing — no wait, no device access.
            self.queue.retire(future.cmd_id, mach.now());
            return Ok(future.busy);
        }
        let now = mach.now();
        let mut polls = 0;
        if future.ready_at > now {
            let remaining = future.ready_at - now;
            match self.cfg.wait {
                WaitPolicy::Spin => {
                    mach.core.spin_wait(remaining);
                    self.stats.busy_wait_time += remaining;
                }
                WaitPolicy::Poll { interval, insts_per_poll } => {
                    polls = self.charge_polled_wait(mach, remaining, interval, insts_per_poll);
                    if !self.cfg.reactor {
                        // Legacy polling hits the PMIO status register
                        // on every wake-up.
                        self.stats.reg_accesses += polls;
                        self.stats.status_reads += polls;
                    }
                }
            }
        }
        if self.cfg.reactor {
            match self.cfg.wait {
                WaitPolicy::Spin => {
                    // The spin loop ends on the PMIO read observing the
                    // status flip (same cost as the legacy path); the
                    // read doubles as the batched doorbell sweep for
                    // everything else that retired meanwhile.
                    let _ = self.read_reg(mach, acc, Reg::Status);
                    polls = 1;
                }
                WaitPolicy::Poll { insts_per_poll, .. } => {
                    // Polled wake-ups read the completion-queue head in
                    // cacheable shared memory — no PMIO. A command
                    // found already complete costs one such read.
                    if polls == 0 {
                        mach.core.retire(InstClass::Other, insts_per_poll);
                        polls = 1;
                    }
                }
            }
            // Cycle-granular waits can land a fraction of a cycle short
            // of `ready_at`; sweep at the later of the two so this
            // command's doorbell is guaranteed to post.
            self.poll_reactor(acc, mach.now().max(future.ready_at), polls);
            // Normally claims the doorbell the sweep just delivered; a
            // re-synced future (scratch-release retry) is already gone
            // and the claim is a benign no-op.
            let _ = self.reactor.claim(future.cmd_id);
        } else {
            // Final status read confirming completion.
            let _ = self.read_reg(mach, acc, Reg::Status);
            self.stats.status_reads += 1;
        }
        self.queue.retire(future.cmd_id, mach.now());
        Ok(future.busy)
    }

    /// Triggers the armed command and waits for completion per the wait
    /// policy — submit and sync back-to-back, the blocking path of
    /// [`DispatchMode::Sync`]. Returns the accelerator busy time.
    ///
    /// # Errors
    ///
    /// Returns [`CimError::Device`] if the engine flagged an error.
    pub fn invoke(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
    ) -> Result<SimTime, CimError> {
        let future = self.submit(mach, acc)?;
        self.sync(mach, acc, &future)
    }

    /// [`CimDriver::invoke`] confined to `region` with declared operand
    /// ranges — the blocking counterpart of [`CimDriver::submit_region`].
    ///
    /// # Errors
    ///
    /// Returns [`CimError::Device`] if the engine flagged an error.
    pub fn invoke_region(
        &mut self,
        mach: &mut Machine,
        acc: &mut CimAccelerator,
        region: GridRegion,
        reads: &[(u64, u64)],
        writes: &[(u64, u64)],
    ) -> Result<SimTime, CimError> {
        let future = self.submit_region(mach, acc, region, reads, writes)?;
        self.sync(mach, acc, &future)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cim_accel::regs::Command;
    use cim_accel::AccelConfig;
    use cim_machine::MachineConfig;

    fn setup() -> (Machine, CimAccelerator, CimDriver) {
        let mach = Machine::new(MachineConfig::test_small());
        let acc = CimAccelerator::new(AccelConfig::test_small(), mach.cfg.bus);
        (mach, acc, CimDriver::new(DriverConfig::default()))
    }

    fn arm_identity_gemv(mach: &mut Machine, acc: &mut CimAccelerator, drv: &mut CimDriver) -> u64 {
        let (_v, a) = mach.alloc_cma(64).expect("cma");
        let (_v, x) = mach.alloc_cma(64).expect("cma");
        let (_v, y) = mach.alloc_cma(64).expect("cma");
        mach.mem.write_f32_slice(a, &[1.0, 0.0, 0.0, 1.0]);
        mach.mem.write_f32_slice(x, &[5.0, -3.0]);
        drv.write_regs(
            mach,
            acc,
            &[
                (Reg::M, 2),
                (Reg::K, 2),
                (Reg::Lda, 2),
                (Reg::AddrA, a),
                (Reg::AddrB, x),
                (Reg::AddrC, y),
                (Reg::Alpha, 1.0f32.to_bits() as u64),
                (Reg::Beta, 0.0f32.to_bits() as u64),
                (Reg::Command, Command::Gemv as u64),
            ],
        );
        y
    }

    #[test]
    fn ioctl_charges_instructions() {
        let (mut mach, _acc, mut drv) = setup();
        let before = mach.core.instructions();
        drv.ioctl(&mut mach);
        assert_eq!(mach.core.instructions() - before, 1500);
        assert_eq!(drv.stats().ioctls, 1);
    }

    #[test]
    fn reg_writes_cost_time_and_instructions() {
        let (mut mach, mut acc, mut drv) = setup();
        let t0 = mach.now();
        drv.write_regs(&mut mach, &mut acc, &[(Reg::M, 4), (Reg::N, 4)]);
        assert_eq!(acc.pmio_read(Reg::M), 4);
        assert!(mach.now() > t0); // PMIO latency advanced the clock
        assert_eq!(drv.stats().reg_accesses, 2);
    }

    #[test]
    fn spin_wait_burns_host_instructions() {
        let (mut mach, mut acc, mut drv) = setup();
        let y = arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let insts_before = mach.core.instructions();
        let dur = drv.invoke(&mut mach, &mut acc).expect("gemv ok");
        assert!(dur.as_us() > 1.0); // at least one row-program + compute

        // Spin burns about one instruction per cycle of the wait, and the
        // whole wait is accounted as busy (host-energy-relevant) time.
        let spin = mach.core.spin_instructions();
        assert!(spin as f64 >= dur.to_cycles(mach.cfg.freq_hz) as f64 * 0.9);
        assert!(mach.core.instructions() > insts_before + spin);
        assert_eq!(drv.stats().busy_wait_time, dur);
        assert_eq!(drv.stats().idle_wait_time, SimTime::ZERO);
        assert_eq!(drv.stats().total_wait_time(), dur);
        assert_eq!(mach.mem.read_f32(y), 5.0);
    }

    #[test]
    fn poll_wait_retires_far_fewer_instructions() {
        let (mut mach, mut acc, mut drv) = setup();
        drv.cfg.wait = WaitPolicy::Poll { interval: SimTime::from_us(10.0), insts_per_poll: 20 };
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let before = mach.core.instructions();
        let dur = drv.invoke(&mut mach, &mut acc).expect("gemv ok");
        let retired = mach.core.instructions() - before;
        assert!(retired < dur.to_cycles(mach.cfg.freq_hz) / 10);
        assert_eq!(mach.core.spin_instructions(), 0);
        // But the clock still advanced by the accelerator time, and the
        // wait is accounted as idle — the host was asleep, not burning
        // instructions, so it must not be billed as spin energy.
        assert!(mach.now() >= dur);
        assert_eq!(drv.stats().idle_wait_time, dur);
        assert_eq!(drv.stats().busy_wait_time, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "poll interval")]
    fn zero_poll_interval_rejected_at_construction() {
        let cfg = DriverConfig {
            wait: WaitPolicy::Poll { interval: SimTime::ZERO, insts_per_poll: 20 },
            ..DriverConfig::default()
        };
        let _ = CimDriver::new(cfg);
    }

    #[test]
    fn zero_poll_interval_clamped_in_wait_path() {
        // A config mutated after construction bypasses `validate`; the
        // wait path must still clamp rather than divide by zero.
        let (mut mach, mut acc, mut drv) = setup();
        drv.cfg.wait = WaitPolicy::Poll { interval: SimTime::ZERO, insts_per_poll: 2 };
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let reads_before = drv.stats().status_reads;
        let dur = drv.invoke(&mut mach, &mut acc).expect("gemv ok");
        // One poll per clamped (1 ns) interval at most — finite and sane
        // (+1 for a final confirming read).
        let max_polls = dur.as_ns().ceil() as u64 + 1;
        assert!(drv.stats().status_reads - reads_before <= max_polls + 1);
    }

    #[test]
    fn first_poll_completion_charges_only_elapsed_time() {
        // Regression: a polled wait that completes on its first status
        // read used to append the poll's instruction time *after* the
        // idle window, overshooting the completion instant by a full
        // poll. The wake-up instructions must overlap the wait.
        let (mut mach, mut acc, mut drv) = setup();
        let insts_per_poll = 200;
        drv.cfg.wait = WaitPolicy::Poll { interval: SimTime::from_us(10_000.0), insts_per_poll };
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let fut = drv.submit(&mut mach, &mut acc).expect("submit ok");
        drv.sync(&mut mach, &mut acc, &fut).expect("sync ok");
        let cycle_ns = 1e9 / mach.cfg.freq_hz;
        let over = mach.now().as_ns() - fut.ready_at.as_ns();
        assert!(
            over.abs() <= cycle_ns,
            "wait must end at ready_at (off by {over} ns, > one cycle)"
        );
        assert_eq!(drv.stats().batched_polls, 1, "one coarse poll");
        assert_eq!(drv.stats().status_reads, 1);
        assert_eq!(drv.stats().completions_polled, 1);
        assert_eq!(drv.stats().idle_wait_time, fut.busy);
    }

    #[test]
    fn batched_poll_makes_earlier_sync_free() {
        // Two chained commands; syncing the *later* one sweeps both
        // doorbells in one batched read, so the earlier sync costs
        // nothing — no wait, no device access, no clock movement.
        let (mut mach, mut acc, mut drv) = setup();
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let f1 = drv.submit(&mut mach, &mut acc).expect("first");
        drv.write_regs(&mut mach, &mut acc, &[(Reg::Command, Command::Gemv as u64)]);
        let f2 = drv.submit(&mut mach, &mut acc).expect("second");
        drv.sync(&mut mach, &mut acc, &f2).expect("sync 2");
        assert_eq!(drv.stats().completions_polled, 2, "one sweep delivered both");
        let (insts, cycles) = mach.core.checkpoint();
        let reads = drv.stats().status_reads;
        drv.sync(&mut mach, &mut acc, &f1).expect("sync 1");
        assert_eq!(mach.core.checkpoint(), (insts, cycles), "claim is free");
        assert_eq!(drv.stats().status_reads, reads, "no extra status read");
        assert_eq!(drv.queue().in_flight(), 0);
    }

    #[test]
    fn legacy_mode_bypasses_the_reactor() {
        let (mut mach, mut acc, mut drv) = setup();
        drv.cfg.reactor = false;
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let dur = drv.invoke(&mut mach, &mut acc).expect("gemv ok");
        assert!(dur > SimTime::ZERO);
        assert_eq!(drv.stats().batched_polls, 0);
        assert_eq!(drv.stats().completions_polled, 0);
        assert_eq!(drv.stats().status_reads, 1, "only the final PMIO read");
        assert_eq!(drv.reactor().in_flight(), 0, "nothing entered the rings");
    }

    #[test]
    #[should_panic(expected = "queue_capacity")]
    fn zero_queue_capacity_rejected_at_construction() {
        let cfg = DriverConfig { queue_capacity: 0, ..DriverConfig::default() };
        let _ = CimDriver::new(cfg);
    }

    #[test]
    fn submit_then_sync_overlaps_host_work() {
        // Reference: fully blocking invocation.
        let (mut mach_ref, mut acc_ref, mut drv_ref) = setup();
        arm_identity_gemv(&mut mach_ref, &mut acc_ref, &mut drv_ref);
        let t_ref0 = mach_ref.now();
        let dur = drv_ref.invoke(&mut mach_ref, &mut acc_ref).expect("gemv ok");
        let blocked = mach_ref.now() - t_ref0;

        // Async: submit, overlap half the accelerator time with useful
        // host work, then sync for the remainder.
        let (mut mach, mut acc, mut drv) = setup();
        let y = arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let t0 = mach.now();
        let fut = drv.submit(&mut mach, &mut acc).expect("submit ok");
        assert_eq!(drv.queue().in_flight(), 1);
        assert_eq!(fut.busy, dur);
        let overlapped = mach.advance_host(dur * 0.5);
        assert!(overlapped > 0);
        fut.wait(&mut mach, &mut drv, &mut acc).expect("sync ok");
        assert_eq!(drv.queue().in_flight(), 0);
        let total = mach.now() - t0;
        // Same wall time as the blocking run (the accelerator bounds it)...
        assert!((total.as_ns() - blocked.as_ns()).abs() < 1.0, "{total} vs {blocked}");
        // ...but only the un-overlapped half was spent waiting.
        let waited = drv.stats().busy_wait_time;
        assert!(waited < dur * 0.6, "waited {waited} of {dur}");
        assert!(mach.core.spin_instructions() < mach_ref.core.spin_instructions());
        assert_eq!(mach.mem.read_f32(y), 5.0);
    }

    #[test]
    fn sync_after_completion_charges_no_wait() {
        let (mut mach, mut acc, mut drv) = setup();
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let fut = drv.submit(&mut mach, &mut acc).expect("submit ok");
        // Host outruns the accelerator: overlap more than the busy time.
        mach.advance_host(fut.busy * 2.0);
        let spin_before = mach.core.spin_instructions();
        drv.sync(&mut mach, &mut acc, &fut).expect("sync ok");
        assert_eq!(mach.core.spin_instructions(), spin_before, "no residual wait");
        assert_eq!(drv.stats().busy_wait_time, SimTime::ZERO);
    }

    #[test]
    fn queue_serializes_overlapping_regions() {
        let (mut mach, mut acc, mut drv) = setup();
        arm_identity_gemv(&mut mach, &mut acc, &mut drv);
        let f1 = drv.submit(&mut mach, &mut acc).expect("first");
        // Second command on the same (full-grid) region: the queue holds
        // it until the first command's predicted completion.
        drv.write_regs(&mut mach, &mut acc, &[(Reg::Command, Command::Gemv as u64)]);
        let f2 = drv.submit(&mut mach, &mut acc).expect("second");
        assert!(f2.ready_at >= f1.ready_at + f2.busy);
        drv.sync(&mut mach, &mut acc, &f1).expect("sync 1");
        drv.sync(&mut mach, &mut acc, &f2).expect("sync 2");
        assert!(mach.now() >= f2.ready_at);
    }

    #[test]
    fn flush_ranges_counts_dirty_lines() {
        let (mut mach, _acc, mut drv) = setup();
        let (va, pa) = mach.alloc_cma(256).expect("cma");
        for i in 0..64 {
            mach.host_store_f32(va + 4 * i, 1.0);
        }
        drv.flush_shared(&mut mach, &[(pa, 256)]);
        assert!(drv.stats().flush_dirty >= 4); // 256B / 64B lines

        // Lines live in both L1 and L2; dirty copies only in L1.
        assert!(drv.stats().flush_lines >= drv.stats().flush_dirty);
    }

    #[test]
    fn full_flush_is_much_more_expensive() {
        let (mut mach, _acc, mut drv) = setup();
        drv.cfg.flush = FlushMode::Full;
        let before = mach.core.instructions();
        drv.flush_shared(&mut mach, &[]);
        let full_cost = mach.core.instructions() - before;
        // Walks every line of L2.
        let lines = mach.cfg.l2.size_bytes / mach.cfg.l1d.line_bytes;
        assert!(full_cost >= lines * mach.cfg.flush_insts_per_line);
    }

    #[test]
    fn invoke_propagates_device_errors() {
        let (mut mach, mut acc, mut drv) = setup();
        drv.write_regs(&mut mach, &mut acc, &[(Reg::Command, Command::Gemm as u64)]);
        // m=n=k=0 -> BadDims.
        let err = drv.invoke(&mut mach, &mut acc).unwrap_err();
        assert!(matches!(err, CimError::Device(_)));
    }

    #[test]
    fn translate_rejects_unmapped() {
        let (mach, _acc, drv) = setup();
        assert!(matches!(drv.translate(&mach, 0xdead_0000), Err(CimError::InvalidPointer(_))));
    }

    #[test]
    fn overrides_retarget_device_and_grid() {
        let drv_cfg = DriverConfig {
            device: Some(DeviceKind::Reram),
            tile_grid: Some((2, 2)),
            ..DriverConfig::default()
        };
        let cfg = drv_cfg.apply_overrides(AccelConfig::test_small());
        assert_eq!(cfg.device, DeviceKind::Reram);
        assert_eq!(cfg.grid, (2, 2));
        assert_eq!(cfg.rows, 8, "geometry preserved");
        assert_eq!(cfg.energy, DeviceKind::Reram.model().energy());
        // Defaults change nothing.
        let same = DriverConfig::default().apply_overrides(AccelConfig::test_small());
        assert_eq!(same, AccelConfig::test_small());
    }
}
