//! Runtime-library call statistics.

use std::fmt;

/// Counters for every entry point of the user-space API.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// `cim_init` calls.
    pub init_calls: u64,
    /// `cim_malloc` calls.
    pub malloc_calls: u64,
    /// Total bytes allocated on the device.
    pub bytes_allocated: u64,
    /// `cim_host_to_dev` calls.
    pub h2d_calls: u64,
    /// Bytes copied host-to-device.
    pub h2d_bytes: u64,
    /// `cim_dev_to_host` calls.
    pub d2h_calls: u64,
    /// Bytes copied device-to-host.
    pub d2h_bytes: u64,
    /// `cim_blas_sgemm` calls.
    pub gemm_calls: u64,
    /// `cim_blas_sgemv` calls.
    pub gemv_calls: u64,
    /// `cim_blas_gemm_batched` calls.
    pub gemm_batched_calls: u64,
    /// `cim_conv2d` calls.
    pub conv_calls: u64,
    /// Commands dispatched asynchronously (submitted without blocking).
    pub async_submits: u64,
    /// In-flight commands an observation point (h2d/d2h/coherence sync)
    /// left running because their operands did not overlap the observed
    /// buffer — each one is a wait the buffer-scoped doorbell avoided.
    pub selective_sync_skips: u64,
    /// `cim_pin` calls (compiler residency placement).
    pub pin_calls: u64,
    /// Kernels whose stationary operand was pinned and already installed
    /// — the pre-invocation flush of that operand was skipped and the
    /// engine reused the resident tiles.
    pub pin_hits: u64,
    /// Pinned ranges invalidated because a host write or free reached
    /// them through a runtime entry point.
    pub pin_invalidations: u64,
    /// Installed pins evicted from their tiles because a fresh pinned
    /// placement exceeded the grid's capacity (the entry stays pinned
    /// and re-installs on its next use — a capacity spill).
    pub pin_evictions: u64,
    /// Submissions by *this context* that found the shared submission
    /// ring full and stalled — the per-tenant attribution of
    /// [`crate::driver::DriverStats::queue_full_stalls`], so a noisy
    /// neighbor's backpressure shows up on the neighbor, not the victim.
    pub queue_full_stalls: u64,
    /// Kernel calls delayed by the serving scheduler's fairness policy
    /// (accumulated tile-time backlog exceeded the tenant's quota).
    pub sched_throttles: u64,
    /// Kernel calls delayed because the tenant exhausted its wear
    /// budget (endurance metering; see `serve::TenantConfig`).
    pub wear_throttles: u64,
}

impl RuntimeStats {
    /// Total accelerator-invoking calls.
    pub fn offload_calls(&self) -> u64 {
        self.gemm_calls + self.gemv_calls + self.gemm_batched_calls + self.conv_calls
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "runtime statistics:")?;
        writeln!(f, "  init/malloc      {:>8} / {:<8}", self.init_calls, self.malloc_calls)?;
        writeln!(f, "  h2d/d2h bytes    {:>8} / {:<8}", self.h2d_bytes, self.d2h_bytes)?;
        writeln!(
            f,
            "  gemm/gemv/batched/conv {:>4}/{}/{}/{}",
            self.gemm_calls, self.gemv_calls, self.gemm_batched_calls, self.conv_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offload_calls_sums_kernel_entry_points() {
        let s = RuntimeStats {
            gemm_calls: 2,
            gemv_calls: 3,
            gemm_batched_calls: 1,
            conv_calls: 4,
            ..RuntimeStats::default()
        };
        assert_eq!(s.offload_calls(), 10);
    }

    #[test]
    fn display_is_non_empty() {
        assert!(RuntimeStats::default().to_string().contains("runtime statistics"));
    }
}
