//! Host-side completion reactor: ring-buffer command/completion queues.
//!
//! The paper's driver exposes one status register per context, and the
//! PR 5 dispatch queue already lets independent commands overlap — but
//! every `sync` still ran its own wait loop against that register, so a
//! host draining N futures paid N separate status-read loops. Real
//! offload stacks (NVMe, io_uring, most NIC drivers) instead pair a
//! fixed-capacity **submission ring** with a **completion ring** of
//! doorbell records the device writes to shared memory as commands
//! retire. The host then learns about *every* finished command with a
//! single read of the completion-queue head — one batched status read
//! services all in-flight commands, and a future synced after its
//! doorbell already arrived costs nothing at all.
//!
//! This module is the device-visible half of that design: plain data
//! structures advanced explicitly by the driver at simulated instants
//! (`device_progress(now)` plays the device's doorbell writes, `poll`
//! plays one host sweep of the completion queue). The driver decides
//! what each sweep costs; see `driver.rs` for the accounting.

use cim_machine::units::SimTime;
use std::collections::BTreeSet;

/// Fixed-capacity ring buffer addressed by monotonically increasing
/// sequence numbers, the storage of both reactor queues.
///
/// Slot `seq % capacity` holds the entry pushed with sequence `seq`. A
/// push fails when the slot it needs is still occupied — authentic ring
/// semantics: even with fewer than `capacity` live entries, a new
/// submission can be refused because one *old* entry still pins the
/// slot the ring has wrapped back to.
///
/// Entries free in two ways: [`RingBuffer::pop`] drains in FIFO order
/// (completion-queue style), [`RingBuffer::take`] frees a specific
/// sequence mid-ring (submission-queue style — slots live from submit
/// until the completion is delivered, in any order).
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    slots: Vec<Option<(u64, T)>>,
    /// Oldest sequence not yet swept past by `pop`.
    head: u64,
    /// Next sequence to allocate.
    tail: u64,
    live: usize,
}

impl<T> RingBuffer<T> {
    /// Creates an empty ring with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs at least one slot");
        RingBuffer { slots: (0..capacity).map(|_| None).collect(), head: 0, tail: 0, live: 0 }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live entries currently held.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `true` when the next push would fail: the slot sequence
    /// `next_seq` maps to is still occupied.
    pub fn is_full(&self) -> bool {
        // Raw occupancy, not `slot()`: the pinning entry is an *older*
        // sequence that maps to the same slot.
        self.slots[self.index(self.tail)].is_some()
    }

    /// The sequence number the next successful push will get.
    pub fn next_seq(&self) -> u64 {
        self.tail
    }

    /// Pushes an entry, returning its sequence number, or gives the
    /// entry back when its slot is still occupied.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` — the rejected entry — when the ring is full.
    pub fn push(&mut self, v: T) -> Result<u64, T> {
        if self.is_full() {
            return Err(v);
        }
        let seq = self.tail;
        let ix = self.index(seq);
        self.slots[ix] = Some((seq, v));
        self.tail += 1;
        self.live += 1;
        Ok(seq)
    }

    /// Removes and returns the oldest live entry with its sequence, in
    /// FIFO order, skipping slots already freed by [`RingBuffer::take`].
    pub fn pop(&mut self) -> Option<(u64, T)> {
        while self.head < self.tail {
            let seq = self.head;
            self.head += 1;
            let ix = self.index(seq);
            if self.slots[ix].as_ref().is_some_and(|(s, _)| *s == seq) {
                let (_, v) = self.slots[ix].take().expect("checked occupied");
                self.live -= 1;
                return Some((seq, v));
            }
        }
        None
    }

    /// Frees the entry at `seq` mid-ring, returning it if it was live.
    pub fn take(&mut self, seq: u64) -> Option<T> {
        let ix = self.index(seq);
        if self.slots[ix].as_ref().is_some_and(|(s, _)| *s == seq) {
            let (_, v) = self.slots[ix].take().expect("checked occupied");
            self.live -= 1;
            Some(v)
        } else {
            None
        }
    }

    /// Borrows the live entry at `seq`.
    pub fn get(&self, seq: u64) -> Option<&T> {
        self.slot(seq).map(|(_, v)| v)
    }

    /// Mutably borrows the live entry at `seq`.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        let ix = self.index(seq);
        match self.slots[ix].as_mut() {
            Some((s, v)) if *s == seq => Some(v),
            _ => None,
        }
    }

    /// Iterates the live entries in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        (self.head..self.tail).filter_map(|seq| self.slot(seq).map(|(s, v)| (*s, v)))
    }

    fn index(&self, seq: u64) -> usize {
        (seq % self.slots.len() as u64) as usize
    }

    fn slot(&self, seq: u64) -> Option<&(u64, T)> {
        self.slots[self.index(seq)].as_ref().filter(|(s, _)| *s == seq)
    }
}

/// Submission-ring record for one in-flight command: everything the
/// device model needs to write the doorbell when the command retires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdRecord {
    /// Logical command id (`CimAccelerator::last_cmd`).
    pub cmd_id: u64,
    /// Simulated instant the command's doorbell becomes visible.
    pub ready_at: SimTime,
    /// Accelerator busy time of the command.
    pub busy: SimTime,
}

/// Doorbell record the device model posts to the completion queue when
/// a command retires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Submission-ring sequence this completion frees.
    pub sq_seq: u64,
    /// Logical command id.
    pub cmd_id: u64,
    /// Instant the doorbell was (or could first have been) posted.
    pub ready_at: SimTime,
    /// Accelerator busy time of the command.
    pub busy: SimTime,
}

#[derive(Debug, Clone)]
struct SqEntry {
    rec: CmdRecord,
    /// Doorbell already posted to the completion queue (the slot stays
    /// pinned until the host drains the doorbell and claims it).
    posted: bool,
}

/// The reactor: one submission ring of in-flight commands, one
/// completion ring of doorbells, and the set of delivered-but-unclaimed
/// completions. All host cost accounting lives in the driver — this
/// type only tracks *what* happened and *when*.
#[derive(Debug, Clone)]
pub struct Reactor {
    sq: RingBuffer<SqEntry>,
    cq: RingBuffer<Completion>,
    /// Completions swept off the CQ whose futures have not synced yet.
    delivered: BTreeSet<u64>,
    cq_deferrals: u64,
    completions_posted: u64,
}

impl Reactor {
    /// Creates a reactor whose submission and completion rings both
    /// hold `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Reactor::with_capacities(capacity, capacity)
    }

    /// Creates a reactor with distinct ring capacities — the
    /// fault-injection tests use a deliberately undersized completion
    /// ring to force doorbell deferrals.
    pub fn with_capacities(sq_capacity: usize, cq_capacity: usize) -> Self {
        Reactor {
            sq: RingBuffer::new(sq_capacity),
            cq: RingBuffer::new(cq_capacity),
            delivered: BTreeSet::new(),
            cq_deferrals: 0,
            completions_posted: 0,
        }
    }

    /// Submission-ring capacity.
    pub fn capacity(&self) -> usize {
        self.sq.capacity()
    }

    /// Commands submitted and not yet delivered to the host.
    pub fn in_flight(&self) -> usize {
        self.sq.len()
    }

    /// Completions delivered to the host and not yet claimed.
    pub fn unclaimed(&self) -> usize {
        self.delivered.len()
    }

    /// Times a doorbell post was deferred because the completion ring
    /// was full (the device retries on the next progress sweep).
    pub fn cq_deferrals(&self) -> u64 {
        self.cq_deferrals
    }

    /// Doorbells posted to the completion ring so far.
    pub fn completions_posted(&self) -> u64 {
        self.completions_posted
    }

    /// `true` when the submission ring can accept another command.
    pub fn can_submit(&self) -> bool {
        !self.sq.is_full()
    }

    /// Completion instant of the in-flight command pinning the slot the
    /// next submission needs — the earliest instant a full ring can
    /// accept new work (`None` when the ring is not full).
    pub fn blocking_ready_at(&self) -> Option<SimTime> {
        if self.can_submit() {
            return None;
        }
        let blocking_seq = self.sq.next_seq() - self.sq.capacity() as u64;
        self.sq.get(blocking_seq).map(|e| e.rec.ready_at)
    }

    /// Records a submitted command in the submission ring.
    ///
    /// # Errors
    ///
    /// Returns the rejected record when the ring is full — the caller
    /// must stall (queue-full backpressure) and poll until
    /// [`Reactor::can_submit`] holds.
    pub fn submit(&mut self, rec: CmdRecord) -> Result<u64, CmdRecord> {
        self.sq.push(SqEntry { rec, posted: false }).map_err(|e| e.rec)
    }

    /// Plays the device model forward to `now`: every in-flight command
    /// whose completion instant has passed posts its doorbell to the
    /// completion ring, in retirement order (`ready_at`, then command
    /// id — commands on different DMA channels or disjoint regions
    /// retire out of submission order). Posts that find the completion
    /// ring full are deferred, counted, and retried on the next sweep.
    /// Returns the number of doorbells posted.
    pub fn device_progress(&mut self, now: SimTime) -> usize {
        let mut due: Vec<(SimTime, u64, u64)> = self
            .sq
            .iter()
            .filter(|(_, e)| !e.posted && e.rec.ready_at <= now)
            .map(|(seq, e)| (e.rec.ready_at, e.rec.cmd_id, seq))
            .collect();
        due.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("sim times are finite").then(a.1.cmp(&b.1))
        });
        let mut posted = 0;
        for (i, (ready_at, cmd_id, seq)) in due.iter().enumerate() {
            if self.cq.is_full() {
                self.cq_deferrals += (due.len() - i) as u64;
                break;
            }
            let busy = self.sq.get(*seq).expect("due entry is live").rec.busy;
            let c = Completion { sq_seq: *seq, cmd_id: *cmd_id, ready_at: *ready_at, busy };
            self.cq.push(c).expect("checked not full");
            self.sq.get_mut(*seq).expect("due entry is live").posted = true;
            self.completions_posted += 1;
            posted += 1;
        }
        posted
    }

    /// One batched host poll at `now`: sweeps device progress and
    /// drains the completion ring until quiescent, freeing each drained
    /// command's submission slot and marking it delivered. Draining can
    /// unblock deferred doorbells, so the sweep loops until a pass
    /// neither posts nor drains. Returns the number of completions
    /// delivered to the host.
    pub fn poll(&mut self, now: SimTime) -> usize {
        let mut total = 0;
        loop {
            let posted = self.device_progress(now);
            let mut drained = 0;
            while let Some((_, c)) = self.cq.pop() {
                let freed = self.sq.take(c.sq_seq);
                debug_assert!(freed.is_some(), "completion must free a live submission slot");
                let fresh = self.delivered.insert(c.cmd_id);
                debug_assert!(fresh, "doorbell for cmd {} delivered twice", c.cmd_id);
                drained += 1;
            }
            total += drained;
            if posted == 0 && drained == 0 {
                return total;
            }
        }
    }

    /// Claims a delivered completion: `true` exactly once per command,
    /// after its doorbell was swept by some [`Reactor::poll`].
    pub fn claim(&mut self, cmd_id: u64) -> bool {
        self.delivered.remove(&cmd_id)
    }

    /// `true` while `cmd_id`'s doorbell is delivered but unclaimed.
    pub fn is_delivered(&self, cmd_id: u64) -> bool {
        self.delivered.contains(&cmd_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_pop_fifo_with_wraparound() {
        let mut r = RingBuffer::new(3);
        for round in 0u64..4 {
            for i in 0..3 {
                assert_eq!(r.push(round * 10 + i), Ok(round * 3 + i));
            }
            assert!(r.is_full());
            assert_eq!(r.push(99), Err(99), "full ring rejects and returns the entry");
            for i in 0..3 {
                assert_eq!(r.pop(), Some((round * 3 + i, round * 10 + i)));
            }
            assert!(r.is_empty());
            assert_eq!(r.pop(), None);
        }
    }

    #[test]
    fn ring_take_frees_mid_ring_and_pop_skips_hole() {
        let mut r = RingBuffer::new(4);
        for i in 0..4u64 {
            r.push(i).unwrap();
        }
        assert_eq!(r.take(1), Some(1));
        assert_eq!(r.take(1), None, "double take fails");
        assert_eq!(r.len(), 3);
        // Seq 1's slot is free, but seq 0 still pins slot 0: seq 4 maps
        // to slot 0 and must be refused — ring, not free-list.
        assert!(r.is_full());
        assert_eq!(r.push(4), Err(4));
        assert_eq!(r.pop(), Some((0, 0)));
        // Now slot 0 is free: push lands at seq 4, and pop skips the
        // hole take() left at seq 1.
        assert_eq!(r.push(4), Ok(4));
        assert_eq!(r.pop(), Some((2, 2)));
        assert_eq!(r.pop(), Some((3, 3)));
        assert_eq!(r.pop(), Some((4, 4)));
        assert!(r.is_empty());
    }

    #[test]
    fn ring_get_rejects_stale_sequences() {
        let mut r = RingBuffer::new(2);
        r.push("a").unwrap();
        r.push("b").unwrap();
        assert_eq!(r.get(0), Some(&"a"));
        r.pop().unwrap();
        r.push("c").unwrap(); // seq 2, reuses slot 0
        assert_eq!(r.get(0), None, "slot reused: old seq no longer resolves");
        assert_eq!(r.get(2), Some(&"c"));
        assert_eq!(r.iter().map(|(s, _)| s).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn ring_capacity_one_alternates() {
        let mut r = RingBuffer::new(1);
        for i in 0..5u64 {
            assert_eq!(r.push(i), Ok(i));
            assert!(r.is_full());
            assert_eq!(r.push(99), Err(99));
            assert_eq!(r.pop(), Some((i, i)));
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn ring_rejects_zero_capacity() {
        let _ = RingBuffer::<u8>::new(0);
    }

    fn rec(cmd_id: u64, ready_ns: f64) -> CmdRecord {
        CmdRecord { cmd_id, ready_at: SimTime::from_ns(ready_ns), busy: SimTime::from_ns(1.0) }
    }

    #[test]
    fn reactor_delivers_each_doorbell_exactly_once() {
        let mut r = Reactor::new(4);
        for i in 0..3 {
            r.submit(rec(i, 10.0 * (i + 1) as f64)).unwrap();
        }
        assert_eq!(r.poll(SimTime::from_ns(5.0)), 0, "nothing due yet");
        assert_eq!(r.poll(SimTime::from_ns(25.0)), 2);
        assert!(r.claim(0) && r.claim(1));
        assert!(!r.claim(0), "claim is once-only");
        assert_eq!(r.poll(SimTime::from_ns(25.0)), 0, "no doorbell re-delivered");
        assert_eq!(r.poll(SimTime::from_ns(30.0)), 1);
        assert!(r.claim(2));
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn reactor_backpressure_reports_blocking_instant() {
        let mut r = Reactor::new(2);
        r.submit(rec(7, 100.0)).unwrap();
        r.submit(rec(8, 50.0)).unwrap();
        assert!(!r.can_submit());
        // Slot for the next submission is pinned by cmd 7 (seq 0), not
        // by the earlier-finishing cmd 8.
        assert_eq!(r.blocking_ready_at(), Some(SimTime::from_ns(100.0)));
        assert_eq!(r.submit(rec(9, 1.0)).unwrap_err().cmd_id, 9);
        r.poll(SimTime::from_ns(100.0));
        assert!(r.can_submit());
        assert_eq!(r.blocking_ready_at(), None);
        r.submit(rec(9, 120.0)).unwrap();
    }

    #[test]
    fn reactor_defers_doorbells_on_full_completion_ring() {
        // SQ holds 4 in-flight commands, CQ only 2 doorbells: the
        // device defers the rest and retries after the host drains.
        let mut r = Reactor::with_capacities(4, 2);
        for i in 0..4 {
            r.submit(rec(i, 10.0)).unwrap();
        }
        // device_progress alone (no host drain): 2 posted, 2 deferred.
        assert_eq!(r.device_progress(SimTime::from_ns(10.0)), 2);
        assert_eq!(r.cq_deferrals(), 2);
        // A host poll drains, letting the retry land the rest: no
        // doorbell is lost.
        assert_eq!(r.poll(SimTime::from_ns(10.0)), 4);
        assert_eq!(r.in_flight(), 0);
        assert!((0..4).all(|i| r.claim(i)));
    }

    #[test]
    fn reactor_out_of_order_retirement_frees_slots() {
        let mut r = Reactor::new(3);
        r.submit(rec(0, 30.0)).unwrap();
        r.submit(rec(1, 10.0)).unwrap();
        r.submit(rec(2, 20.0)).unwrap();
        // Commands 1 and 2 retire before 0 (disjoint regions / other
        // DMA channels): delivered in ready_at order.
        assert_eq!(r.poll(SimTime::from_ns(25.0)), 2);
        assert!(r.is_delivered(1) && r.is_delivered(2) && !r.is_delivered(0));
        assert!(r.claim(1) && r.claim(2));
        // Only one entry is live, yet the ring is full for the *next*
        // push: seq 3 maps to the slot the laggard seq 0 still pins.
        assert!(!r.can_submit());
        assert_eq!(r.submit(rec(3, 40.0)).unwrap_err().cmd_id, 3);
        assert_eq!(r.blocking_ready_at(), Some(SimTime::from_ns(30.0)));
        assert_eq!(r.poll(SimTime::from_ns(30.0)), 1);
        assert!(r.claim(0));
        r.submit(rec(3, 40.0)).unwrap();
        r.submit(rec(4, 40.0)).unwrap();
        assert_eq!(r.poll(SimTime::from_ns(40.0)), 2);
        assert!(r.claim(3) && r.claim(4));
        assert_eq!(r.in_flight(), 0);
    }
}
