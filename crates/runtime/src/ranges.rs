//! The one overlap predicate for physical byte ranges `(base, len)`.
//!
//! Both doorbells — the dispatch queue's per-command conflict check and
//! the observation points' pending-command check — and the residency
//! table key off the same half-open overlap test, defined once here so
//! the rules (notably: empty ranges touch no bytes) cannot diverge.

/// Whether half-open ranges `[p1, p1+l1)` and `[p2, p2+l2)` share a
/// byte. Empty ranges overlap nothing — without the guards, a
/// zero-length range at an interior point would count as overlap.
pub(crate) fn overlaps((p1, l1): (u64, u64), (p2, l2): (u64, u64)) -> bool {
    l1 > 0 && l2 > 0 && p1 < p2 + l2 && p2 < p1 + l1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_geometry() {
        assert!(overlaps((0, 8), (4, 8)));
        assert!(overlaps((4, 8), (0, 8)));
        assert!(!overlaps((0, 8), (8, 8)), "adjacent ranges are disjoint");
        assert!(overlaps((0, 8), (7, 1)));
    }

    #[test]
    fn empty_ranges_overlap_nothing() {
        assert!(!overlaps((4, 0), (0, 8)), "zero length at an interior point");
        assert!(!overlaps((0, 8), (4, 0)));
        assert!(!overlaps((0, 0), (0, 0)));
    }
}
