//! Fault injection on the serving layer: tenants leave mid-flight and
//! rings overflow, and the blast radius must stay confined to the
//! tenant that caused it. A disconnecting tenant's in-flight commands
//! are synchronized and its doorbells claimed — the shared completion
//! ring never leaks an unclaimed doorbell to the survivors — its lease
//! is reclaimed for the next tenant, and the survivors' results are
//! untouched. Ring-full backpressure lands on the flooding tenant's own
//! `queue_full_stalls` ledger, never the victim's.

use cim_accel::AccelConfig;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::{
    CimContext, CimServer, DevPtr, DispatchMode, DriverConfig, ServePolicy, TenantConfig, Transpose,
};

const N: usize = 8;

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

fn identity(n: usize) -> Vec<f32> {
    let mut a = vec![0f32; n * n];
    for i in 0..n {
        a[i * n + i] = 1.0;
    }
    a
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// One identity GEMV: `y = I * x`, so the expected result is `x`
/// itself, bit for bit — corruption by a neighbor's fault would show.
fn issue_identity_op(ctx: &mut CimContext, mach: &mut Machine, seed: usize) -> (DevPtr, Vec<f32>) {
    let a = dev_mat(ctx, mach, &identity(N));
    let x_data = fill(N, seed, 0.125);
    let x = dev_mat(ctx, mach, &x_data);
    let y = dev_mat(ctx, mach, &fill(N, seed + 1, 0.5));
    ctx.cim_blas_sgemv(mach, Transpose::No, N, N, 1.0, a, N, x, 0.0, y).expect("gemv");
    (y, x_data)
}

fn assert_bits(mach: &mut Machine, y: DevPtr, want: &[f32]) {
    let mut got = vec![0f32; want.len()];
    mach.peek_f32_slice(y.va, &mut got);
    let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits, "survivor result corrupted");
}

/// A tenant disconnects with commands still in flight: its doorbells
/// are claimed on the way out, its lease is reclaimed and handed to the
/// next tenant, and the survivors' in-flight work completes bit-exact.
#[test]
fn disconnect_mid_flight_reclaims_lease_without_losing_doorbells() {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(2, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        ServePolicy { regions: 2, ..Default::default() },
        &mach,
    );
    let mut leaver = server.connect(TenantConfig::default());
    let mut survivor = server.connect(TenantConfig::default());
    leaver.cim_init(&mut mach, 0).expect("init");
    survivor.cim_init(&mut mach, 0).expect("init");
    let leaver_tid = leaver.tenant().expect("tenant");

    // Both tenants put several commands in flight.
    for i in 0..3 {
        issue_identity_op(&mut leaver, &mut mach, 100 + i * 7);
    }
    let survivor_results: Vec<(DevPtr, Vec<f32>)> =
        (0..3).map(|i| issue_identity_op(&mut survivor, &mut mach, 500 + i * 7)).collect();
    assert!(
        server.device().borrow().driver.reactor().in_flight() > 0,
        "the fault must hit mid-flight"
    );
    assert!(server.lease_of(leaver_tid).is_some(), "leaver holds a lease before the fault");

    // Mid-flight disconnect: the leaver's own doorbells are claimed on
    // the way out, everything it allocated is released, its lease gone.
    server.disconnect(&mut mach, leaver).expect("disconnect");
    assert_eq!(server.lease_of(leaver_tid), None, "lease reclaimed");

    // A late joiner picks up the freed region rather than doubling up.
    let mut joiner = server.connect(TenantConfig::default());
    joiner.cim_init(&mut mach, 0).expect("init");
    let (y_joiner, x_joiner) = issue_identity_op(&mut joiner, &mut mach, 900);
    let joiner_tid = joiner.tenant().expect("tenant");
    joiner.cim_sync(&mut mach).expect("sync");
    let survivor_lease = server.lease_of(survivor.tenant().expect("tenant")).expect("lease");
    let joiner_lease = server.lease_of(joiner_tid).expect("lease");
    assert!(!joiner_lease.overlaps(&survivor_lease), "joiner reuses the reclaimed region");

    // Survivors drain: results bit-exact, no doorbell lost or leaked.
    survivor.cim_sync(&mut mach).expect("sync");
    for (y, want) in &survivor_results {
        assert_bits(&mut mach, *y, want);
    }
    assert_bits(&mut mach, y_joiner, &x_joiner);
    let dev = server.device();
    let dev = dev.borrow();
    assert_eq!(dev.driver.reactor().unclaimed(), 0, "no orphaned doorbells");
    assert_eq!(dev.driver.reactor().in_flight(), 0, "everything retired");
}

/// Ring-full backpressure is attributed to the tenant whose submission
/// stalled: the flooding tenant's `queue_full_stalls` ledger carries
/// every stall the shared driver saw, and the victim's stays zero.
#[test]
fn queue_full_backpressure_lands_on_the_flooding_tenant() {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(1, 1),
        DriverConfig {
            dispatch: DispatchMode::Async,
            queue_capacity: 2,
            ..DriverConfig::default()
        },
        ServePolicy::default(),
        &mach,
    );
    let mut adversary = server.connect(TenantConfig::default());
    let mut victim = server.connect(TenantConfig::default());
    adversary.cim_init(&mut mach, 0).expect("init");
    victim.cim_init(&mut mach, 0).expect("init");

    // Eight async installs against two ring slots: the flood stalls on
    // its own submissions...
    let adv_results: Vec<(DevPtr, Vec<f32>)> =
        (0..8).map(|i| issue_identity_op(&mut adversary, &mut mach, 100 + i * 7)).collect();
    assert!(adversary.stats().queue_full_stalls > 0, "a flood against a 2-slot ring must stall");
    adversary.cim_sync(&mut mach).expect("sync");

    // ...and the victim, submitting into the drained ring, never pays.
    let (y, want) = issue_identity_op(&mut victim, &mut mach, 900);
    victim.cim_sync(&mut mach).expect("sync");
    assert_eq!(victim.stats().queue_full_stalls, 0, "backpressure leaked onto the victim");

    // Conservation: the shared driver's stall count is exactly the sum
    // of the per-tenant ledgers.
    let total = server.device().borrow().driver.stats().queue_full_stalls;
    assert_eq!(
        total,
        adversary.stats().queue_full_stalls + victim.stats().queue_full_stalls,
        "driver stalls must be fully attributed"
    );
    for (y_adv, want_adv) in &adv_results {
        assert_bits(&mut mach, *y_adv, want_adv);
    }
    assert_bits(&mut mach, y, &want);
}
