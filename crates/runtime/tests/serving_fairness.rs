//! Fairness and starvation-freedom under adversarial saturation, on the
//! modeled clock. A flooding tenant on a fully contended grid must not
//! starve its co-lessees: deficit-weighted admission keeps every
//! tenant's scheduled-but-unretired backlog within its weighted quota
//! (plus in-flight slack), which bounds every other tenant's queueing
//! delay by the sum of its co-lessees' quotas. The FIFO baseline run on
//! the identical schedule shows the unbounded backlog the policy
//! removes, and weighted quotas translate into proportionally deeper
//! pipelines for heavier tenants.
//!
//! Every op here installs a fresh stationary operand, so its modeled
//! busy time (row programming + compute) dwarfs the host-side submit
//! overhead — saturation is real, not an artifact of host pacing.

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::{
    CimContext, CimServer, DevPtr, DispatchMode, DriverConfig, FairnessPolicy, ServePolicy,
    TenantConfig, Transpose,
};

const M: usize = 8;
const K: usize = 8;

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// One GEMV with a *fresh* stationary `A` (forces an install, so the
/// modeled busy time dominates host overhead); returns that busy time.
fn issue_op(ctx: &mut CimContext, mach: &mut Machine, seed: usize) -> SimTime {
    let a = dev_mat(ctx, mach, &fill(M * K, seed, 0.25));
    let x = dev_mat(ctx, mach, &fill(K, seed + 1, 0.125));
    let y = dev_mat(ctx, mach, &fill(M, seed + 2, 0.5));
    ctx.cim_blas_sgemv(mach, Transpose::No, M, K, 1.0, a, K, x, 0.0, y).expect("gemv")
}

/// The modeled busy time of one such GEMV, measured on a throwaway
/// private context so the fairness bounds below are calibration-free.
fn calibrate_busy() -> SimTime {
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut ctx = CimContext::new(
        AccelConfig::test_small().with_grid(1, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        &mach,
    );
    ctx.cim_init(&mut mach, 0).expect("init");
    let busy = issue_op(&mut ctx, &mut mach, 11);
    ctx.cim_sync(&mut mach).expect("sync");
    busy
}

struct SaturationRun {
    adv_max_backlog: SimTime,
    victim_max_backlog: SimTime,
    adv_throttles: u64,
    victim_ops: usize,
}

/// The adversarial schedule: on a single fully contended lease region,
/// the adversary floods `FLOOD` calls back to back while the victim
/// slips one call in after every fifth. Backlogs are sampled right
/// after every call — the instant each tenant's pipeline is deepest.
fn run_saturation(fairness: FairnessPolicy) -> SaturationRun {
    const FLOOD: usize = 30;
    let mut mach = Machine::new(MachineConfig::test_small());
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(1, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        ServePolicy { regions: 0, fairness },
        &mach,
    );
    let mut adv = server.connect(TenantConfig::default());
    let mut victim = server.connect(TenantConfig::default());
    adv.cim_init(&mut mach, 0).expect("init");
    victim.cim_init(&mut mach, 0).expect("init");
    let adv_tid = adv.tenant().expect("tenant");
    let victim_tid = victim.tenant().expect("tenant");
    let mut adv_max_backlog = SimTime::ZERO;
    let mut victim_max_backlog = SimTime::ZERO;
    let mut victim_ops = 0;
    for i in 0..FLOOD {
        issue_op(&mut adv, &mut mach, 100 + i * 7);
        adv_max_backlog = adv_max_backlog.max(server.backlog_of(adv_tid, mach.now()));
        if i % 5 == 4 {
            issue_op(&mut victim, &mut mach, 500 + i * 7);
            victim_ops += 1;
            victim_max_backlog = victim_max_backlog.max(server.backlog_of(victim_tid, mach.now()));
        }
    }
    adv.cim_sync(&mut mach).expect("sync");
    victim.cim_sync(&mut mach).expect("sync");
    SaturationRun {
        adv_max_backlog,
        victim_max_backlog,
        adv_throttles: adv.stats().sched_throttles,
        victim_ops,
    }
}

fn quota() -> SimTime {
    match FairnessPolicy::default() {
        FairnessPolicy::DeficitWeighted { backlog_quota, .. } => backlog_quota,
        FairnessPolicy::Fifo => unreachable!("default policy is deficit-weighted"),
    }
}

/// Deficit admission bounds both tenants' backlogs on the modeled
/// clock: the adversary's by its own quota (plus at most one of its own
/// commands and one in-flight victim command), the victim's by the sum
/// of both quotas — the starvation-freedom bound.
#[test]
fn deficit_admission_bounds_backlog_and_victim_wait() {
    let busy = calibrate_busy();
    let run = run_saturation(FairnessPolicy::default());
    let q = quota();
    let adv_bound = q + busy * 3.0;
    assert!(
        run.adv_max_backlog.as_ns() <= adv_bound.as_ns(),
        "adversary backlog {} exceeds quota bound {}",
        run.adv_max_backlog,
        adv_bound
    );
    let victim_bound = q + q + busy * 3.0;
    assert!(
        run.victim_max_backlog.as_ns() <= victim_bound.as_ns(),
        "victim wait {} exceeds co-lessee quota sum {}",
        run.victim_max_backlog,
        victim_bound
    );
    assert!(run.adv_throttles > 0, "a 30-deep flood must trip admission at least once");
    assert_eq!(run.victim_ops, 6, "victim completed all of its submissions");
}

/// The FIFO baseline on the identical schedule: nothing bounds the
/// flood, so the adversary's backlog blows through the deficit bound
/// and the victim queues behind all of it — the differential evidence
/// that admission control, not the dispatch queue, provides fairness.
#[test]
fn fifo_baseline_lets_the_flood_starve_the_victim() {
    let busy = calibrate_busy();
    let fair = run_saturation(FairnessPolicy::default());
    let fifo = run_saturation(FairnessPolicy::Fifo);
    assert_eq!(fifo.adv_throttles, 0, "FIFO never throttles");
    let adv_bound = quota() + busy * 3.0;
    assert!(
        fifo.adv_max_backlog.as_ns() > 2.0 * adv_bound.as_ns(),
        "FIFO flood backlog {} should dwarf the deficit bound {}",
        fifo.adv_max_backlog,
        adv_bound
    );
    assert!(
        fifo.victim_max_backlog.as_ns() > fair.victim_max_backlog.as_ns(),
        "the victim must wait strictly longer under FIFO ({} vs {})",
        fifo.victim_max_backlog,
        fair.victim_max_backlog
    );
}

/// Weighted quotas are proportional pipeline depth: two greedy tenants
/// that each submit whatever admission lets through for free drain ops
/// at rates ordered by weight, and the light tenant still progresses
/// (no starvation under saturation).
#[test]
fn weights_order_drain_rates_without_starvation() {
    let busy = calibrate_busy();
    let mut mach = Machine::new(MachineConfig::test_small());
    let policy = ServePolicy {
        regions: 0,
        fairness: FairnessPolicy::DeficitWeighted {
            backlog_quota: busy * 3.0,
            wear_penalty: SimTime::ZERO,
        },
    };
    let mut server = CimServer::new(
        AccelConfig::test_small().with_grid(1, 1),
        DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() },
        policy,
        &mach,
    );
    let mut heavy = server.connect(TenantConfig { weight: 3, wear_budget: None });
    let mut light = server.connect(TenantConfig { weight: 1, wear_budget: None });
    heavy.cim_init(&mut mach, 0).expect("init");
    light.cim_init(&mut mach, 0).expect("init");
    let heavy_tid = heavy.tenant().expect("tenant");
    let light_tid = light.tenant().expect("tenant");
    let (mut heavy_ops, mut light_ops) = (0usize, 0usize);
    let quota_heavy = busy * 9.0; // backlog_quota x weight 3
    let quota_light = busy * 3.0;
    // Greedy open-loop offers: each round both tenants submit whatever
    // fits inside their quota without a throttle, then the clock
    // advances one command's worth so the region drains. The cap per
    // round only guards termination; quota binds first.
    for round in 0..60 {
        for burst in 0..16 {
            if server.backlog_of(heavy_tid, mach.now()) + busy > quota_heavy {
                break;
            }
            issue_op(&mut heavy, &mut mach, 1000 + round * 37 + burst * 3);
            heavy_ops += 1;
        }
        for burst in 0..16 {
            if server.backlog_of(light_tid, mach.now()) + busy > quota_light {
                break;
            }
            issue_op(&mut light, &mut mach, 5000 + round * 37 + burst * 3);
            light_ops += 1;
        }
        mach.advance_host(busy);
    }
    heavy.cim_sync(&mut mach).expect("sync");
    light.cim_sync(&mut mach).expect("sync");
    assert!(heavy_ops > light_ops, "weight 3 must out-drain weight 1 ({heavy_ops} vs {light_ops})");
    assert!(light_ops >= 3, "the light tenant keeps making progress ({light_ops} ops)");
    let (hu, lu) = (server.usage(heavy_tid), server.usage(light_tid));
    assert!(hu.tile_ns > lu.tile_ns, "tile-time share follows weight");
    assert!(lu.tile_ns > 0.0, "no starvation: the light tenant holds a share");
}
