//! Property tests: asynchronous, tile-partitioned batched dispatch is
//! pure schedule — `C` results stay bit-for-bit identical to the serial
//! synchronous path for every tile grid and fidelity, the modeled time
//! never regresses, and identical async runs replay identical timelines.

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_pcm::Fidelity;
use cim_runtime::{CimContext, DevPtr, DispatchMode, DriverConfig, Transpose};
use proptest::prelude::*;

struct BatchCase {
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    beta: f32,
    count: usize,
}

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

struct BatchRun {
    c_bits: Vec<Vec<u32>>,
    elapsed: SimTime,
    max_tiles_active: u64,
    timeline: String,
}

/// Builds a context over `grid`/`fidelity` and runs the case's batch,
/// either as one `cim_blas_gemm_batched` call under `dispatch`, or — with
/// `serial` — as `count` individual synchronous `cim_blas_sgemm` calls.
fn run_batch(
    case: &BatchCase,
    grid: (usize, usize),
    fidelity: Fidelity,
    dispatch: DispatchMode,
    serial: bool,
) -> BatchRun {
    let mut mach = Machine::new(MachineConfig::test_small());
    let accel_cfg = AccelConfig { fidelity, ..AccelConfig::test_small() }.with_grid(grid.0, grid.1);
    let drv_cfg = DriverConfig { dispatch, ..DriverConfig::default() };
    let mut ctx = CimContext::new(accel_cfg, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let dev_mat = |ctx: &mut CimContext, mach: &mut Machine, data: &[f32]| -> DevPtr {
        let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
        mach.poke_f32_slice(dev.va, data);
        dev
    };
    let mut a_list = Vec::new();
    let mut b_list = Vec::new();
    let mut c_list = Vec::new();
    for i in 0..case.count {
        let (m, n, k) = (case.m, case.n, case.k);
        a_list.push(dev_mat(&mut ctx, &mut mach, &fill(m * k, 3 + i * 31, 0.25)));
        b_list.push(dev_mat(&mut ctx, &mut mach, &fill(k * n, 11 + i * 17, 0.125)));
        c_list.push(dev_mat(&mut ctx, &mut mach, &fill(m * n, 7 + i * 5, 0.5)));
    }
    let t0 = mach.now();
    if serial {
        for i in 0..case.count {
            ctx.cim_blas_sgemm(
                &mut mach,
                Transpose::No,
                Transpose::No,
                case.m,
                case.n,
                case.k,
                case.alpha,
                a_list[i],
                case.k,
                b_list[i],
                case.n,
                case.beta,
                c_list[i],
                case.n,
            )
            .expect("sgemm");
        }
    } else {
        ctx.cim_blas_gemm_batched(
            &mut mach,
            Transpose::No,
            Transpose::No,
            case.m,
            case.n,
            case.k,
            case.alpha,
            &a_list,
            case.k,
            &b_list,
            case.n,
            case.beta,
            &c_list,
            case.n,
        )
        .expect("batched");
    }
    ctx.cim_sync(&mut mach).expect("sync");
    let elapsed = mach.now() - t0;
    let c_bits = c_list
        .iter()
        .map(|c| {
            let mut out = vec![0f32; case.m * case.n];
            mach.peek_f32_slice(c.va, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    let max_tiles_active = ctx.accel().stats().max_tiles_active;
    let timeline = ctx.accel().timeline().render();
    BatchRun { c_bits, elapsed, max_tiles_active, timeline }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Async batched dispatch produces bit-for-bit the `C` results of
    /// the serial synchronous path, for every grid/fidelity combination.
    #[test]
    fn async_batched_matches_serial_bit_for_bit(
        m in 1usize..16,
        n in 1usize..5,
        k in 1usize..16,
        gk in 1usize..4,
        gm in 1usize..4,
        count in 1usize..5,
        alpha_q in -3i32..4,
        beta_q in -2i32..3,
        int8 in proptest::bool::ANY,
    ) {
        let case = BatchCase {
            m, n, k, count,
            alpha: alpha_q as f32 * 0.5,
            beta: beta_q as f32 * 0.5,
        };
        let fidelity = if int8 { Fidelity::Int8 } else { Fidelity::Exact };
        let serial = run_batch(&case, (1, 1), fidelity, DispatchMode::Sync, true);
        let async_run = run_batch(&case, (gk, gm), fidelity, DispatchMode::Async, false);
        prop_assert_eq!(&async_run.c_bits, &serial.c_bits);
        // (No universal timing claim here: for degenerate batches the
        // descriptor-table overhead legitimately outweighs the saved
        // ioctls — `async_batch_beats_serial_sum` pins the timing win on
        // a real workload.)
    }

    /// Two identical async runs replay identical schedules: same
    /// rendered timeline, same occupancy, same clock.
    #[test]
    fn async_dispatch_is_deterministic(
        m in 1usize..12,
        k in 1usize..12,
        count in 1usize..4,
        gk in 1usize..3,
        gm in 1usize..3,
    ) {
        let case = BatchCase { m, n: 3, k, count, alpha: 1.0, beta: 0.5 };
        let one = run_batch(&case, (gk, gm), Fidelity::Exact, DispatchMode::Async, false);
        let two = run_batch(&case, (gk, gm), Fidelity::Exact, DispatchMode::Async, false);
        prop_assert_eq!(one.timeline, two.timeline);
        prop_assert_eq!(one.c_bits, two.c_bits);
        prop_assert_eq!(one.elapsed, two.elapsed);
        prop_assert_eq!(one.max_tiles_active, two.max_tiles_active);
    }
}

/// The fig-7 acceptance pinned as a test: a batch of independent GEMMs
/// under async dispatch finishes in strictly less modeled time than the
/// serial sum of synchronous calls, with at least two tiles active.
#[test]
fn async_batch_beats_serial_sum() {
    let case = BatchCase { m: 8, n: 8, k: 8, count: 4, alpha: 1.0, beta: 0.0 };
    let serial = run_batch(&case, (1, 1), Fidelity::Exact, DispatchMode::Sync, true);
    let async_run = run_batch(&case, (2, 2), Fidelity::Exact, DispatchMode::Async, false);
    assert_eq!(async_run.c_bits, serial.c_bits, "results must not depend on the schedule");
    assert!(
        async_run.elapsed.as_ns() < serial.elapsed.as_ns(),
        "async batch {} not faster than serial sum {}",
        async_run.elapsed,
        serial.elapsed
    );
    assert_eq!(serial.max_tiles_active, 1);
    assert!(async_run.max_tiles_active >= 2, "tile regions ran concurrently");
}
