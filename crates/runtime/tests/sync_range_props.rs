//! Boundary cases of the buffer-scoped doorbell
//! (`CimContext::cim_sync_range`): adjacent-but-disjoint physical
//! ranges must not sync, zero-length ranges never sync, a range
//! spanning several pending commands syncs them all — and `cim_free`
//! rides the same selective path instead of sweeping the whole queue.

use cim_accel::AccelConfig;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::{CimContext, DevPtr, DispatchMode, DriverConfig, Transpose};
use proptest::prelude::*;

fn setup() -> (Machine, CimContext) {
    let mach = Machine::new(MachineConfig::test_small());
    let drv = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
    let ctx = CimContext::new(AccelConfig::test_small(), drv, &mach);
    (mach, ctx)
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// Submits one async 2x2 GEMM over fresh `a`/`b`/`c` buffers and
/// returns them (the command's observation footprint).
fn submit_gemm(ctx: &mut CimContext, mach: &mut Machine) -> [DevPtr; 3] {
    let a = dev_mat(ctx, mach, &[1.0, 0.0, 0.0, 1.0]);
    let b = dev_mat(ctx, mach, &[1.0, 2.0, 3.0, 4.0]);
    let c = dev_mat(ctx, mach, &[0.0; 4]);
    ctx.cim_blas_sgemm(mach, Transpose::No, Transpose::No, 2, 2, 2, 1.0, a, 2, b, 2, 0.0, c, 2)
        .expect("submits");
    [a, b, c]
}

#[test]
fn zero_length_range_syncs_nothing() {
    let (mut mach, mut ctx) = setup();
    ctx.cim_init(&mut mach, 0).expect("init");
    let [a, _, c] = submit_gemm(&mut ctx, &mut mach);
    assert_eq!(ctx.pending_commands(), 1);
    for pa in [c.pa, c.pa + 4, a.pa, 0] {
        ctx.cim_sync_range(&mut mach, pa, 0).expect("sync");
        assert_eq!(ctx.pending_commands(), 1, "zero-length range at {pa:#x} must not sync");
    }
    assert_eq!(ctx.stats().selective_sync_skips, 4);
}

#[test]
fn adjacent_but_disjoint_range_does_not_sync() {
    let (mut mach, mut ctx) = setup();
    ctx.cim_init(&mut mach, 0).expect("init");
    let [_, _, c] = submit_gemm(&mut ctx, &mut mach);
    // A spacer guarantees the bytes just past `c` belong to no command.
    let _spacer = ctx.cim_malloc(&mut mach, 64).expect("spacer");
    // One byte past the end: disjoint, stays in flight.
    ctx.cim_sync_range(&mut mach, c.pa + c.len, 4).expect("sync");
    assert_eq!(ctx.pending_commands(), 1, "adjacent range must not sync");
    assert_eq!(ctx.stats().selective_sync_skips, 1);
    // Straddling the last byte: overlaps, syncs.
    ctx.cim_sync_range(&mut mach, c.pa + c.len - 4, 8).expect("sync");
    assert_eq!(ctx.pending_commands(), 0, "straddling range must sync");
}

#[test]
fn range_spanning_two_commands_syncs_both() {
    let (mut mach, mut ctx) = setup();
    ctx.cim_init(&mut mach, 0).expect("init");
    let [.., c1] = submit_gemm(&mut ctx, &mut mach);
    let [.., c2] = submit_gemm(&mut ctx, &mut mach);
    assert_eq!(ctx.pending_commands(), 2);
    // A range whose ends lie in the two output buffers: both commands
    // observe overlap and complete.
    let start = c1.pa + c1.len - 4;
    let len = c2.pa + 4 - start;
    ctx.cim_sync_range(&mut mach, start, len).expect("sync");
    assert_eq!(ctx.pending_commands(), 0, "spanning range must sync both");
}

#[test]
fn free_of_disjoint_buffer_leaves_commands_in_flight() {
    // The ISSUE-5 satellite pinned: `cim_free` is buffer-scoped, not a
    // full-queue sweep — freeing a buffer no in-flight command touches
    // skips them all (and the skip is counted).
    let (mut mach, mut ctx) = setup();
    ctx.cim_init(&mut mach, 0).expect("init");
    let unrelated = ctx.cim_malloc(&mut mach, 128).expect("malloc");
    let [.., c] = submit_gemm(&mut ctx, &mut mach);
    assert_eq!(ctx.pending_commands(), 1);
    ctx.cim_free(&mut mach, unrelated).expect("free");
    assert_eq!(ctx.pending_commands(), 1, "free of a disjoint buffer must not sync");
    assert_eq!(ctx.stats().selective_sync_skips, 1);
    // Freeing an actual operand completes the command first.
    ctx.cim_free(&mut mach, c).expect("free operand");
    assert_eq!(ctx.pending_commands(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary command counts and query ranges, `cim_sync_range`
    /// completes exactly the commands whose operand ranges overlap the
    /// query — no more, no fewer — and counts every command it skips.
    #[test]
    fn sync_range_is_exactly_overlap_scoped(
        count in 1usize..4,
        pick in 0usize..3,
        byte_off in 0u64..160,
        len in 0u64..96,
    ) {
        let (mut mach, mut ctx) = setup();
        ctx.cim_init(&mut mach, 0).expect("init");
        let footprints: Vec<[DevPtr; 3]> =
            (0..count).map(|_| submit_gemm(&mut ctx, &mut mach)).collect();
        prop_assert_eq!(ctx.pending_commands(), count);
        // Anchor the query near one command's footprint so overlap and
        // disjointness both occur across cases.
        let base = footprints[pick.min(count - 1)][0].pa;
        let start = base.saturating_add(byte_off).saturating_sub(64);
        let overlap = |p: &DevPtr| len > 0 && start < p.pa + p.len && p.pa < start + len;
        let expect_left: usize =
            footprints.iter().filter(|f| !f.iter().any(&overlap)).count();
        let skips_before = ctx.stats().selective_sync_skips;
        ctx.cim_sync_range(&mut mach, start, len).expect("sync");
        prop_assert_eq!(ctx.pending_commands(), expect_left);
        prop_assert_eq!(
            ctx.stats().selective_sync_skips - skips_before,
            expect_left as u64
        );
    }
}
