//! Tenant-isolation property suite: serving is pure multiplexing. For
//! any number of tenants, any per-tenant workload, any interleaving of
//! their submissions and either fairness policy, every tenant's results
//! through a shared [`CimServer`] must be bit-for-bit identical to the
//! same tenant running alone on a private grid — leases, admission
//! throttling and cross-tenant tile steals may only move work in space
//! and time, never change a single output bit. Per-tenant runtime
//! statistics stay disjoint: each tenant observes exactly its own calls,
//! as if no neighbor existed.

use cim_accel::AccelConfig;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::stats::RuntimeStats;
use cim_runtime::{
    CimContext, CimServer, DevPtr, DispatchMode, DriverConfig, FairnessPolicy, ServePolicy,
    TenantConfig, Transpose,
};
use proptest::prelude::*;

struct Plan {
    tenants: usize,
    /// GEMV calls per tenant; every call reuses the tenant's stationary
    /// `A`, so residency (and cross-tenant tile steals) get exercised.
    ops: usize,
    m: usize,
    k: usize,
    grid: (usize, usize),
    dispatch: DispatchMode,
    fairness: FairnessPolicy,
    order_seed: u64,
}

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

/// Deterministic per-(tenant, op) data, independent of interleaving.
fn a_data(p: &Plan, t: usize) -> Vec<f32> {
    fill(p.m * p.k, 3 + t * 977, 0.25)
}
fn x_data(p: &Plan, t: usize, i: usize) -> Vec<f32> {
    fill(p.k, 11 + t * 101 + i * 17, 0.125)
}
fn y_data(p: &Plan, t: usize, i: usize) -> Vec<f32> {
    fill(p.m, 7 + t * 61 + i * 5, 0.5)
}

struct TenantRun {
    y_bits: Vec<Vec<u32>>,
    stats: RuntimeStats,
}

fn dev_mat(ctx: &mut CimContext, mach: &mut Machine, data: &[f32]) -> DevPtr {
    let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
    mach.poke_f32_slice(dev.va, data);
    dev
}

/// Issues tenant `t`'s op `i` on `ctx` and returns the result pointer.
fn issue_op(
    p: &Plan,
    ctx: &mut CimContext,
    mach: &mut Machine,
    a: DevPtr,
    t: usize,
    i: usize,
) -> DevPtr {
    let x = dev_mat(ctx, mach, &x_data(p, t, i));
    let y = dev_mat(ctx, mach, &y_data(p, t, i));
    ctx.cim_blas_sgemv(mach, Transpose::No, p.m, p.k, 1.25, a, p.k, x, 0.5, y).expect("gemv");
    y
}

fn peek_bits(mach: &mut Machine, ptr: DevPtr, len: usize) -> Vec<u32> {
    let mut out = vec![0f32; len];
    mach.peek_f32_slice(ptr.va, &mut out);
    out.iter().map(|v| v.to_bits()).collect()
}

/// The serving counters the scheduler may legitimately bump in a shared
/// run (a solo private context has no scheduler); masked before the
/// stats comparison so the remaining fields must match exactly.
fn mask_serving(mut s: RuntimeStats) -> RuntimeStats {
    s.sched_throttles = 0;
    s.wear_throttles = 0;
    s
}

/// N tenants interleaved on one shared device, interleaving drawn from
/// `order_seed` by an xorshift walk over tenants with work remaining.
fn run_shared(p: &Plan) -> Vec<TenantRun> {
    let mut mach = Machine::new(MachineConfig::test_small());
    let accel_cfg = AccelConfig::test_small().with_grid(p.grid.0, p.grid.1);
    let drv_cfg = DriverConfig { dispatch: p.dispatch, ..DriverConfig::default() };
    let policy = ServePolicy { regions: 0, fairness: p.fairness };
    let mut server = CimServer::new(accel_cfg, drv_cfg, policy, &mach);
    let mut ctxs: Vec<CimContext> =
        (0..p.tenants).map(|_| server.connect(TenantConfig::default())).collect();
    for ctx in &mut ctxs {
        ctx.cim_init(&mut mach, 0).expect("init");
    }
    let a_ptrs: Vec<DevPtr> =
        (0..p.tenants).map(|t| dev_mat(&mut ctxs[t], &mut mach, &a_data(p, t))).collect();
    let mut remaining = vec![p.ops; p.tenants];
    let mut issued = vec![0usize; p.tenants];
    let mut y_ptrs: Vec<Vec<DevPtr>> = vec![Vec::new(); p.tenants];
    let mut rng = p.order_seed | 1;
    while remaining.iter().any(|&r| r > 0) {
        // xorshift64 walk; skip tenants that are already done.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let mut t = (rng % p.tenants as u64) as usize;
        while remaining[t] == 0 {
            t = (t + 1) % p.tenants;
        }
        let i = issued[t];
        let y = issue_op(p, &mut ctxs[t], &mut mach, a_ptrs[t], t, i);
        y_ptrs[t].push(y);
        issued[t] += 1;
        remaining[t] -= 1;
    }
    ctxs.iter_mut()
        .zip(y_ptrs)
        .map(|(ctx, ys)| {
            ctx.cim_sync(&mut mach).expect("sync");
            let y_bits = ys.iter().map(|y| peek_bits(&mut mach, *y, p.m)).collect();
            TenantRun { y_bits, stats: *ctx.stats() }
        })
        .collect()
}

/// Tenant `t` alone on a private grid of the same shape — the baseline
/// every shared-run tenant must match bit-for-bit.
fn run_solo(p: &Plan, t: usize) -> TenantRun {
    let mut mach = Machine::new(MachineConfig::test_small());
    let accel_cfg = AccelConfig::test_small().with_grid(p.grid.0, p.grid.1);
    let drv_cfg = DriverConfig { dispatch: p.dispatch, ..DriverConfig::default() };
    let mut ctx = CimContext::new(accel_cfg, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let a = dev_mat(&mut ctx, &mut mach, &a_data(p, t));
    let ys: Vec<DevPtr> = (0..p.ops).map(|i| issue_op(p, &mut ctx, &mut mach, a, t, i)).collect();
    ctx.cim_sync(&mut mach).expect("sync");
    let y_bits = ys.iter().map(|y| peek_bits(&mut mach, *y, p.m)).collect();
    TenantRun { y_bits, stats: *ctx.stats() }
}

fn assert_isolated(p: &Plan) -> Result<(), TestCaseError> {
    let shared = run_shared(p);
    for (t, shared_run) in shared.iter().enumerate() {
        let solo = run_solo(p, t);
        prop_assert!(shared_run.y_bits == solo.y_bits, "tenant {} diverged from its solo run", t);
        // Stats disjointness: modulo the scheduler's own throttle
        // counters, a tenant's ledger is exactly its solo ledger — no
        // neighbor's calls, bytes or stalls leak into it.
        prop_assert!(
            mask_serving(shared_run.stats) == mask_serving(solo.stats),
            "tenant {} stats leaked: {:?} vs solo {:?}",
            t,
            shared_run.stats,
            solo.stats
        );
        prop_assert_eq!(shared_run.stats.gemv_calls, p.ops as u64);
        prop_assert_eq!(shared_run.stats.malloc_calls, (1 + 2 * p.ops) as u64);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of N tenants on a shared grid is bit-for-bit
    /// each tenant's solo run, under both dispatch modes and both
    /// fairness policies.
    #[test]
    fn any_interleaving_matches_each_tenant_solo(
        tenants in 2usize..5,
        ops in 1usize..4,
        m in 1usize..9,
        k in 1usize..9,
        gk in 1usize..3,
        gm in 1usize..3,
        order_seed in 0u64..u64::MAX,
        async_dispatch in proptest::bool::ANY,
        fair in proptest::bool::ANY,
    ) {
        let p = Plan {
            tenants, ops, m, k,
            grid: (gk, gm),
            dispatch: if async_dispatch { DispatchMode::Async } else { DispatchMode::Sync },
            fairness: if fair { FairnessPolicy::default() } else { FairnessPolicy::Fifo },
            order_seed,
        };
        assert_isolated(&p)?;
    }
}

/// Deterministic anchor: more tenants than lease regions — every lease
/// is contended, every tenant shares tiles — still bit-for-bit solo.
#[test]
fn oversubscribed_grid_still_isolates() {
    let p = Plan {
        tenants: 4,
        ops: 3,
        m: 6,
        k: 6,
        grid: (1, 1),
        dispatch: DispatchMode::Async,
        fairness: FairnessPolicy::default(),
        order_seed: 0x9e3779b97f4a7c15,
    };
    assert_isolated(&p).expect("oversubscribed isolation");
}

/// Deterministic anchor: per-tenant usage ledgers meter only the owning
/// tenant's dispatches, and every connected tenant makes progress.
#[test]
fn usage_ledgers_are_disjoint() {
    let mut mach = Machine::new(MachineConfig::test_small());
    let accel_cfg = AccelConfig::test_small().with_grid(2, 2);
    let drv_cfg = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
    let mut server =
        CimServer::new(accel_cfg, drv_cfg, ServePolicy { regions: 2, ..Default::default() }, &mach);
    let p = Plan {
        tenants: 3,
        ops: 2,
        m: 5,
        k: 7,
        grid: (2, 2),
        dispatch: DispatchMode::Async,
        fairness: FairnessPolicy::default(),
        order_seed: 1,
    };
    let mut ctxs: Vec<CimContext> =
        (0..p.tenants).map(|_| server.connect(TenantConfig::default())).collect();
    let tids: Vec<_> = ctxs.iter().map(|c| c.tenant().expect("tenant id")).collect();
    for (t, ctx) in ctxs.iter_mut().enumerate() {
        ctx.cim_init(&mut mach, 0).expect("init");
        let a = dev_mat(ctx, &mut mach, &a_data(&p, t));
        for i in 0..p.ops {
            issue_op(&p, ctx, &mut mach, a, t, i);
        }
        ctx.cim_sync(&mut mach).expect("sync");
    }
    for &tid in &tids {
        let u = server.usage(tid);
        assert_eq!(u.grants, p.ops as u64, "each ledger meters exactly its own dispatches");
        assert!(u.tile_ns > 0.0, "every tenant made progress");
        assert!(u.wear_cells > 0, "installs are charged to the installing tenant");
    }
    // Three tenants over two lease regions: both partitions are in use
    // (the third tenant shares the less-loaded one).
    let leased: Vec<_> = tids.iter().map(|&tid| server.lease_of(tid).expect("leased")).collect();
    let mut origins: Vec<_> = leased.iter().map(|r| r.origin).collect();
    origins.sort_unstable();
    origins.dedup();
    assert_eq!(origins.len(), 2, "leases spread across both regions, then share");
    assert_eq!(server.device().borrow().driver.reactor().unclaimed(), 0);
}
