//! Differential property tests: the reactor is pure mechanism. For any
//! schedule — sync or async dispatch, any tile grid, any DMA channel
//! count, spinning or polling waits — routing completions through the
//! ring-buffer reactor must leave results bit-for-bit identical to the
//! per-future wait loops it replaced, with identical runtime statistics
//! and an identical device timeline, while never reading status more
//! often and never finishing later.

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_pcm::Fidelity;
use cim_runtime::stats::RuntimeStats;
use cim_runtime::{CimContext, DevPtr, DispatchMode, DriverConfig, Transpose, WaitPolicy};
use proptest::prelude::*;

struct Schedule {
    m: usize,
    n: usize,
    k: usize,
    count: usize,
    alpha: f32,
    beta: f32,
    grid: (usize, usize),
    channels: usize,
    fidelity: Fidelity,
    dispatch: DispatchMode,
    wait: WaitPolicy,
}

fn fill(len: usize, seed: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((seed + i * 7) % 13) as f32 * scale - 1.5).collect()
}

struct Run {
    c_bits: Vec<Vec<u32>>,
    elapsed: SimTime,
    runtime_stats: RuntimeStats,
    timeline: String,
    status_reads: u64,
    total_wait: SimTime,
}

/// Runs the schedule's GEMMs (individual calls, so async dispatch
/// produces several concurrent futures) with the reactor on or off.
fn run(s: &Schedule, reactor: bool) -> Run {
    let mut mach = Machine::new(MachineConfig::test_small());
    let accel_cfg = AccelConfig { fidelity: s.fidelity, ..AccelConfig::test_small() }
        .with_grid(s.grid.0, s.grid.1)
        .with_dma_channels(s.channels);
    let drv_cfg =
        DriverConfig { dispatch: s.dispatch, wait: s.wait, reactor, ..DriverConfig::default() };
    let mut ctx = CimContext::new(accel_cfg, drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let dev_mat = |ctx: &mut CimContext, mach: &mut Machine, data: &[f32]| -> DevPtr {
        let dev = ctx.cim_malloc(mach, (data.len() * 4) as u64).expect("malloc");
        mach.poke_f32_slice(dev.va, data);
        dev
    };
    let mut c_list = Vec::new();
    let t0 = mach.now();
    for i in 0..s.count {
        let a = dev_mat(&mut ctx, &mut mach, &fill(s.m * s.k, 3 + i * 31, 0.25));
        let b = dev_mat(&mut ctx, &mut mach, &fill(s.k * s.n, 11 + i * 17, 0.125));
        let c = dev_mat(&mut ctx, &mut mach, &fill(s.m * s.n, 7 + i * 5, 0.5));
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            s.m,
            s.n,
            s.k,
            s.alpha,
            a,
            s.k,
            b,
            s.n,
            s.beta,
            c,
            s.n,
        )
        .expect("sgemm");
        c_list.push(c);
    }
    ctx.cim_sync(&mut mach).expect("sync");
    let c_bits = c_list
        .iter()
        .map(|c| {
            let mut out = vec![0f32; s.m * s.n];
            mach.peek_f32_slice(c.va, &mut out);
            out.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    let drv = ctx.driver().stats();
    let timeline = ctx.accel().timeline().render();
    Run {
        c_bits,
        elapsed: mach.now() - t0,
        runtime_stats: *ctx.stats(),
        timeline,
        status_reads: drv.status_reads,
        total_wait: drv.total_wait_time(),
    }
}

fn assert_differential(s: &Schedule, label: &str) -> Result<(), TestCaseError> {
    let legacy = run(s, false);
    let reactor = run(s, true);
    prop_assert_eq!(&reactor.c_bits, &legacy.c_bits);
    prop_assert_eq!(reactor.runtime_stats, legacy.runtime_stats);
    // Device schedules match whenever no submission sits downstream of
    // a *polled* wait: under Sync+Poll the corrected (overlapped) poll
    // accounting lets later commands start slightly earlier, which is
    // the satellite fix itself, not a reactor divergence.
    let submit_after_polled_wait =
        s.dispatch == DispatchMode::Sync && matches!(s.wait, WaitPolicy::Poll { .. });
    if !submit_after_polled_wait {
        prop_assert_eq!(&reactor.timeline, &legacy.timeline);
    }
    prop_assert!(
        reactor.status_reads <= legacy.status_reads,
        "{}: reactor read status {} times, legacy {}",
        label,
        reactor.status_reads,
        legacy.status_reads
    );
    // The reactor may finish earlier (claimed futures skip their final
    // PMIO read) but never later; one core cycle of slack covers the
    // cycle-rounding of the overlapped poll accounting.
    let cycle_ns = 1e9 / MachineConfig::test_small().freq_hz;
    prop_assert!(
        reactor.elapsed.as_ns() <= legacy.elapsed.as_ns() + cycle_ns,
        "{}: reactor elapsed {} vs legacy {}",
        label,
        reactor.elapsed,
        legacy.elapsed
    );
    // (No claim on total_wait_time: the legacy accounting *overshot*
    // the clock with poll-instruction time, silently shrinking the
    // `remaining` of later futures — the seam the overlapped poll
    // accounting fixed — so the corrected wait totals may be slightly
    // larger even as the end-to-end clock above is never later.)
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random schedules under every dispatch/wait/grid/channel axis:
    /// reactor and per-future polling are observationally equivalent.
    #[test]
    fn reactor_matches_per_future_polling(
        m in 1usize..14,
        n in 1usize..5,
        k in 1usize..14,
        count in 1usize..5,
        gk in 1usize..4,
        gm in 1usize..4,
        ch_ix in 0usize..3,
        alpha_q in -3i32..4,
        beta_q in -2i32..3,
        int8 in proptest::bool::ANY,
        async_dispatch in proptest::bool::ANY,
        poll_wait in proptest::bool::ANY,
    ) {
        let s = Schedule {
            m, n, k, count,
            alpha: alpha_q as f32 * 0.5,
            beta: beta_q as f32 * 0.5,
            grid: (gk, gm),
            channels: [1, 2, 4][ch_ix],
            fidelity: if int8 { Fidelity::Int8 } else { Fidelity::Exact },
            dispatch: if async_dispatch { DispatchMode::Async } else { DispatchMode::Sync },
            wait: if poll_wait {
                WaitPolicy::Poll { interval: SimTime::from_us(1.0), insts_per_poll: 20 }
            } else {
                WaitPolicy::Spin
            },
        };
        let label = format!(
            "m={m} n={n} k={k} count={count} grid={gk}x{gm} ch={} {:?} {:?} poll={poll_wait}",
            s.channels, s.fidelity, s.dispatch
        );
        assert_differential(&s, &label)?;
    }
}

/// Deterministic anchor: under synchronous spinning dispatch — the
/// paper-default figure configuration — the reactor is bit-for-bit
/// *timing*-identical too, so every committed fig5/fig6/table1 baseline
/// is untouched by construction.
#[test]
fn sync_spin_timing_is_bit_identical() {
    let s = Schedule {
        m: 12,
        n: 4,
        k: 12,
        count: 3,
        alpha: 1.0,
        beta: 0.5,
        grid: (2, 2),
        channels: 2,
        fidelity: Fidelity::Exact,
        dispatch: DispatchMode::Sync,
        wait: WaitPolicy::Spin,
    };
    let legacy = run(&s, false);
    let reactor = run(&s, true);
    assert_eq!(reactor.c_bits, legacy.c_bits);
    assert_eq!(reactor.elapsed, legacy.elapsed, "sync+spin must not shift at all");
    assert_eq!(reactor.total_wait, legacy.total_wait);
    assert_eq!(reactor.timeline, legacy.timeline);
}

/// Deterministic anchor for the batching win: draining several async
/// futures costs strictly fewer status reads through the reactor.
#[test]
fn async_drain_batches_status_reads() {
    let s = Schedule {
        m: 8,
        n: 4,
        k: 8,
        count: 4,
        alpha: 1.0,
        beta: 0.0,
        grid: (2, 2),
        channels: 1,
        fidelity: Fidelity::Exact,
        dispatch: DispatchMode::Async,
        wait: WaitPolicy::Poll { interval: SimTime::from_us(5.0), insts_per_poll: 20 },
    };
    let legacy = run(&s, false);
    let reactor = run(&s, true);
    assert_eq!(reactor.c_bits, legacy.c_bits);
    assert!(
        reactor.status_reads < legacy.status_reads,
        "batched sweeps must beat per-future polling: {} vs {}",
        reactor.status_reads,
        legacy.status_reads
    );
}
