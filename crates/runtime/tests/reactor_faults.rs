//! Fault-injection harness for the reactor's ring buffers: deterministic
//! schedules forcing every boundary the rings can hit — queue-full
//! backpressure, completion-before-poll, out-of-order retirement,
//! wraparound at and around capacity — asserting that stalls are
//! counted and that no completion is ever lost or double-delivered.

use cim_accel::AccelConfig;
use cim_machine::units::SimTime;
use cim_machine::{Machine, MachineConfig};
use cim_runtime::reactor::{CmdRecord, Reactor};
use cim_runtime::{CimContext, DispatchMode, DriverConfig, Transpose};

fn rec(cmd_id: u64, ready_ns: f64) -> CmdRecord {
    CmdRecord { cmd_id, ready_at: SimTime::from_ns(ready_ns), busy: SimTime::from_ns(1.0) }
}

/// Streams `total` commands through a capacity-`cap` reactor, obeying
/// backpressure the way the driver does (wait for the pinning command,
/// sweep, retry), and returns every claimed command id in claim order.
fn stream_through(cap: usize, total: u64) -> Vec<u64> {
    let mut r = Reactor::new(cap);
    let mut claimed = Vec::new();
    for id in 0..total {
        let ready = 10.0 * (id + 1) as f64;
        let mut record = rec(id, ready);
        while let Err(back) = r.submit(record) {
            let wake = r.blocking_ready_at().expect("full ring names its pinning command");
            r.poll(wake);
            // Claim everything delivered so the freed doorbells cannot
            // mask a lost or duplicated completion later.
            for cand in 0..total {
                if r.claim(cand) {
                    claimed.push(cand);
                }
            }
            record = back;
        }
    }
    r.poll(SimTime::from_ns(10.0 * (total + 1) as f64));
    for cand in 0..total {
        if r.claim(cand) {
            claimed.push(cand);
        }
    }
    assert_eq!(r.in_flight(), 0, "every submission slot must free");
    assert_eq!(r.unclaimed(), 0, "every doorbell must be claimed");
    claimed
}

#[test]
fn wraparound_delivers_every_command_exactly_once() {
    // Capacities around the boundary: 1 (every push wraps), 2, exact
    // fit for the stream, one short of it, one beyond it.
    for cap in [1, 2, 9, 10, 11] {
        let claimed = stream_through(cap, 10);
        assert_eq!(claimed, (0..10).collect::<Vec<_>>(), "capacity {cap}");
    }
}

#[test]
fn exact_fit_never_stalls_and_off_by_one_does() {
    // Exact fit: 4 commands through 4 slots — no push may fail.
    let mut r = Reactor::new(4);
    for id in 0..4 {
        r.submit(rec(id, 10.0)).expect("exact fit cannot stall");
    }
    assert!(!r.can_submit(), "ring is now exactly full");
    // Off by one: the 5th pushes into the slot command 0 pins.
    assert_eq!(r.submit(rec(4, 10.0)).unwrap_err().cmd_id, 4);
    assert_eq!(r.blocking_ready_at(), Some(SimTime::from_ns(10.0)));
    assert_eq!(r.poll(SimTime::from_ns(10.0)), 4);
    r.submit(rec(4, 20.0)).expect("delivery freed the pinned slot");
    assert_eq!(r.poll(SimTime::from_ns(20.0)), 1);
    assert!((0..5).all(|id| r.claim(id)), "all five delivered exactly once");
}

#[test]
fn completion_before_poll_is_preserved_not_lost() {
    // The device retires a command long before the host ever looks: the
    // doorbell must wait in the completion ring, not vanish.
    let mut r = Reactor::new(2);
    r.submit(rec(0, 5.0)).unwrap();
    // Host is far past ready_at by its first poll.
    assert_eq!(r.poll(SimTime::from_ns(500.0)), 1);
    assert!(r.is_delivered(0));
    // Polling again re-delivers nothing.
    assert_eq!(r.poll(SimTime::from_ns(1000.0)), 0);
    assert!(r.claim(0));
    assert!(!r.claim(0), "a claimed doorbell is gone");
}

#[test]
fn out_of_order_retirement_across_channels_keeps_fifo_slots() {
    // Five commands whose completion order (by ready_at) is a shuffle
    // of submission order — disjoint regions on different DMA channels.
    let readies = [50.0, 10.0, 40.0, 20.0, 30.0];
    let mut r = Reactor::new(5);
    for (id, ready) in readies.iter().enumerate() {
        r.submit(rec(id as u64, *ready)).unwrap();
    }
    // Sweep instants between retirements: each poll delivers exactly
    // the newly due commands, in (ready_at, cmd_id) order.
    let mut order = Vec::new();
    for t in [15.0, 25.0, 35.0, 45.0, 55.0] {
        let before = r.unclaimed();
        r.poll(SimTime::from_ns(t));
        for id in 0..5 {
            if r.is_delivered(id) && !order.contains(&id) {
                order.push(id);
            }
        }
        assert_eq!(r.unclaimed(), before + 1, "one retirement per window");
    }
    assert_eq!(order, vec![1, 3, 4, 2, 0], "delivery follows retirement order");
    assert!((0..5).all(|id| r.claim(id)));
    assert_eq!(r.in_flight(), 0);
}

#[test]
fn full_completion_ring_defers_doorbells_without_losing_any() {
    // Submission ring holds 6 in-flight commands, completion ring only
    // 2 doorbells; all 6 retire at once. The device must defer (and
    // count) the overflow, then land every doorbell across retries.
    let mut r = Reactor::with_capacities(6, 2);
    for id in 0..6 {
        r.submit(rec(id, 10.0)).unwrap();
    }
    assert_eq!(r.device_progress(SimTime::from_ns(10.0)), 2, "CQ admits only two");
    assert_eq!(r.cq_deferrals(), 4);
    // The host sweep drains and loops until the device is quiescent:
    // deferred doorbells land on the retries within one poll call.
    assert_eq!(r.poll(SimTime::from_ns(10.0)), 6);
    assert_eq!(r.completions_posted(), 6);
    assert!((0..6).all(|id| r.claim(id)), "no deferred doorbell was lost");
    assert!(r.cq_deferrals() >= 4, "deferrals were counted");
}

#[test]
fn driver_counts_queue_full_backpressure_stalls() {
    // End-to-end: a capacity-2 submission ring under async dispatch.
    // The third in-flight command must stall the host, be counted, and
    // still complete with correct results.
    let mut mach = Machine::new(MachineConfig::test_small());
    let drv_cfg = DriverConfig {
        dispatch: DispatchMode::Async,
        queue_capacity: 2,
        ..DriverConfig::default()
    };
    let mut ctx = CimContext::new(AccelConfig::test_small(), drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let n = 4usize;
    let ident: Vec<f32> = (0..n * n).map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 }).collect();
    let mut cs = Vec::new();
    for i in 0..4 {
        let a = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc a");
        let b = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc b");
        let c = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc c");
        mach.poke_f32_slice(a.va, &ident);
        let bv: Vec<f32> = (0..n * n).map(|j| (i * 100 + j) as f32).collect();
        mach.poke_f32_slice(b.va, &bv);
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            n,
            n,
            n,
            1.0,
            a,
            n,
            b,
            n,
            0.0,
            c,
            n,
        )
        .expect("sgemm");
        cs.push((c, bv));
    }
    assert!(
        ctx.driver().stats().queue_full_stalls >= 1,
        "third in-flight command must stall on the full ring"
    );
    ctx.cim_sync(&mut mach).expect("sync");
    assert_eq!(ctx.driver().reactor().in_flight(), 0);
    assert_eq!(ctx.driver().reactor().unclaimed(), 0);
    for (c, bv) in cs {
        let mut out = vec![0f32; n * n];
        mach.peek_f32_slice(c.va, &mut out);
        assert_eq!(out, bv, "identity GEMM through a stalling ring stays exact");
    }
}

#[test]
fn generous_ring_never_stalls() {
    // Same workload, default (64-slot) ring: zero backpressure events —
    // the stall counter isolates genuine ring pressure.
    let mut mach = Machine::new(MachineConfig::test_small());
    let drv_cfg = DriverConfig { dispatch: DispatchMode::Async, ..DriverConfig::default() };
    let mut ctx = CimContext::new(AccelConfig::test_small(), drv_cfg, &mach);
    ctx.cim_init(&mut mach, 0).expect("init");
    let n = 4usize;
    for _ in 0..4 {
        let a = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc a");
        let b = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc b");
        let c = ctx.cim_malloc(&mut mach, (n * n * 4) as u64).expect("malloc c");
        mach.poke_f32_slice(a.va, &vec![1.0; n * n]);
        mach.poke_f32_slice(b.va, &vec![0.5; n * n]);
        ctx.cim_blas_sgemm(
            &mut mach,
            Transpose::No,
            Transpose::No,
            n,
            n,
            n,
            1.0,
            a,
            n,
            b,
            n,
            0.0,
            c,
            n,
        )
        .expect("sgemm");
    }
    ctx.cim_sync(&mut mach).expect("sync");
    assert_eq!(ctx.driver().stats().queue_full_stalls, 0);
}
