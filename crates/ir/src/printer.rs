//! Pseudo-C pretty printer.
//!
//! Renders programs in the style of the paper's listings, so the
//! quickstart example can show the exact before/after of Listing 1:
//! loop nests before Loop Tactics, `polly_cim*` calls after.

use crate::expr::{Access, BinOp, Expr, UnOp};
use crate::stmt::{CallArg, CmpOp, Stmt};
use crate::types::Program;
use std::fmt::Write;

/// Renders the whole program as pseudo-C.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for d in &prog.arrays {
        if d.is_scalar() {
            match d.scalar_init {
                Some(v) => {
                    let _ = writeln!(out, "float {} = {};", d.name, fmt_f64(v));
                }
                None => {
                    let _ = writeln!(out, "float {};", d.name);
                }
            }
        } else {
            let dims: String = d.dims.iter().map(|n| format!("[{n}]")).collect();
            let _ = writeln!(out, "float {}{};", d.name, dims);
        }
    }
    let _ = writeln!(out, "void {}() {{", prog.name);
    out.push_str(&print_stmts(prog, &prog.body, 1));
    out.push_str("}\n");
    out
}

/// Renders a statement list at the given indent level.
pub fn print_stmts(prog: &Program, stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    for s in stmts {
        print_stmt(prog, s, indent, &mut out);
    }
    out
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn print_stmt(prog: &Program, s: &Stmt, indent: usize, out: &mut String) {
    match s {
        Stmt::For(l) => {
            pad(indent, out);
            let v = prog.var_name(l.var);
            let step = if l.step == 1 { format!("{v}++") } else { format!("{v} += {}", l.step) };
            let _ = writeln!(
                out,
                "for (int {v} = {}; {v} < {}; {step}) {{",
                print_expr(prog, &l.lo),
                print_expr(prog, &l.hi)
            );
            out.push_str(&print_stmts(prog, &l.body, indent + 1));
            pad(indent, out);
            out.push_str("}\n");
        }
        Stmt::Assign(a) => {
            pad(indent, out);
            let _ = writeln!(
                out,
                "{} = {};",
                print_access(prog, &a.target),
                print_expr(prog, &a.value)
            );
        }
        Stmt::If(i) => {
            pad(indent, out);
            let _ = writeln!(
                out,
                "if ({} {} {}) {{",
                print_expr(prog, &i.cond.lhs),
                cmp_str(i.cond.op),
                print_expr(prog, &i.cond.rhs)
            );
            out.push_str(&print_stmts(prog, &i.then_body, indent + 1));
            if !i.else_body.is_empty() {
                pad(indent, out);
                out.push_str("} else {\n");
                out.push_str(&print_stmts(prog, &i.else_body, indent + 1));
            }
            pad(indent, out);
            out.push_str("}\n");
        }
        Stmt::Call(c) => {
            pad(indent, out);
            let args: Vec<String> = c
                .args
                .iter()
                .map(|a| match a {
                    CallArg::Value(e) => print_expr(prog, e),
                    CallArg::Array(id) => format!("cim_{}", prog.array(*id).name),
                })
                .collect();
            let _ = writeln!(out, "{}({});", c.callee, args.join(", "));
        }
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
    }
}

fn print_access(prog: &Program, a: &Access) -> String {
    let mut s = prog.array(a.array).name.clone();
    for e in &a.idx {
        let _ = write!(s, "[{}]", print_expr(prog, e));
    }
    s
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Renders an expression with minimal parentheses.
pub fn print_expr(prog: &Program, e: &Expr) -> String {
    print_prec(prog, e, 0)
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
        BinOp::Min | BinOp::Max => 3, // rendered as calls, never bare
    }
}

fn print_prec(prog: &Program, e: &Expr, parent: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => fmt_f64(*v),
        Expr::Var(v) => prog.var_name(*v).to_string(),
        Expr::Load(a) => print_access(prog, a),
        Expr::Unary(UnOp::Neg, inner) => format!("-{}", print_prec(prog, inner, 3)),
        Expr::Bin(BinOp::Min, l, r) => {
            format!("min({}, {})", print_prec(prog, l, 0), print_prec(prog, r, 0))
        }
        Expr::Bin(BinOp::Max, l, r) => {
            format!("max({}, {})", print_prec(prog, l, 0), print_prec(prog, r, 0))
        }
        Expr::Bin(op, l, r) => {
            let p = prec_of(*op);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Min | BinOp::Max => unreachable!("handled above"),
            };
            let s = format!("{} {} {}", print_prec(prog, l, p), sym, print_prec(prog, r, p + 1));
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::CallStmt;

    fn gemm_like() -> Program {
        let mut p = Program::new("kernel_demo");
        let c = p.add_array("C", vec![4, 4]);
        let a = p.add_array("A", vec![4, 4]);
        let b = p.add_array("B", vec![4, 4]);
        let i = p.fresh_var("i");
        let j = p.fresh_var("j");
        let k = p.fresh_var("k");
        let body = Stmt::assign(
            Access { array: c, idx: vec![Expr::Var(i), Expr::Var(j)] },
            Expr::add(
                Expr::load(c, vec![Expr::Var(i), Expr::Var(j)]),
                Expr::mul(
                    Expr::load(a, vec![Expr::Var(i), Expr::Var(k)]),
                    Expr::load(b, vec![Expr::Var(k), Expr::Var(j)]),
                ),
            ),
        );
        let kf = Stmt::for_loop(k, Expr::Int(0), Expr::Int(4), 1, vec![body]);
        let jf = Stmt::for_loop(j, Expr::Int(0), Expr::Int(4), 1, vec![kf]);
        let ifor = Stmt::for_loop(i, Expr::Int(0), Expr::Int(4), 1, vec![jf]);
        p.body = vec![ifor];
        p
    }

    #[test]
    fn prints_loop_nest_like_listing() {
        let p = gemm_like();
        let text = print_program(&p);
        assert!(text.contains("for (int i = 0; i < 4; i++) {"));
        assert!(text.contains("C[i][j] = C[i][j] + A[i][k] * B[k][j];"));
        assert!(text.contains("float C[4][4];"));
        assert!(text.contains("void kernel_demo() {"));
    }

    #[test]
    fn prints_calls_with_cim_prefix() {
        let mut p = Program::new("k");
        let a = p.add_array("A", vec![4]);
        p.body = vec![
            Stmt::Call(CallStmt {
                callee: "polly_cimInit".into(),
                args: vec![CallArg::Value(Expr::Int(0))],
            }),
            Stmt::Call(CallStmt {
                callee: "polly_cimMalloc".into(),
                args: vec![CallArg::Array(a)],
            }),
        ];
        let text = print_program(&p);
        assert!(text.contains("polly_cimInit(0);"));
        assert!(text.contains("polly_cimMalloc(cim_A);"));
    }

    #[test]
    fn parenthesization_is_minimal_but_correct() {
        let mut p = Program::new("k");
        let i = p.fresh_var("i");
        // (i + 1) * 2
        let e = Expr::mul(Expr::add(Expr::Var(i), Expr::Int(1)), Expr::Int(2));
        assert_eq!(print_expr(&p, &e), "(i + 1) * 2");
        // i + 1 * 2
        let e = Expr::add(Expr::Var(i), Expr::mul(Expr::Int(1), Expr::Int(2)));
        assert_eq!(print_expr(&p, &e), "i + 1 * 2");
        // a - (b - c) keeps parens
        let e = Expr::sub(Expr::Int(1), Expr::sub(Expr::Int(2), Expr::Int(3)));
        assert_eq!(print_expr(&p, &e), "1 - (2 - 3)");
    }

    #[test]
    fn min_renders_as_call() {
        let mut p = Program::new("k");
        let i = p.fresh_var("ii");
        let e = Expr::min(Expr::add(Expr::Var(i), Expr::Int(32)), Expr::Int(100));
        assert_eq!(print_expr(&p, &e), "min(ii + 32, 100)");
    }

    #[test]
    fn step_rendering() {
        let mut p = Program::new("k");
        let i = p.fresh_var("ii");
        p.body = vec![Stmt::for_loop(i, Expr::Int(0), Expr::Int(64), 32, vec![])];
        let text = print_program(&p);
        assert!(text.contains("for (int ii = 0; ii < 64; ii += 32) {"));
    }
}
