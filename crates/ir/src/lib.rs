//! # tdo-ir — structured loop intermediate representation
//!
//! The IR that the TDO-CIM compilation flow is spelled on. The paper works
//! on LLVM-IR with Polly recovering loop structure and affine accesses;
//! this reproduction keeps the loop structure explicit — a `Program` is a
//! forest of counted loops over affine-indexed `f32` array assignments —
//! which exposes exactly the information Polly's SCoP detection recovers,
//! without carrying an entire SSA compiler.
//!
//! What lives here:
//! * [`types`]/[`expr`]/[`stmt`] — the IR itself;
//! * [`affine`] — affine-form extraction used by SCoP detection and the
//!   Loop Tactics access matchers;
//! * [`interp`] — the interpreter with pluggable backends (pure reference
//!   execution, or the costed machine execution in `tdo-cim`), including
//!   the `polly_cim*` runtime-call ABI;
//! * [`printer`] — pseudo-C rendering (the paper's listings);
//! * [`verify`] — structural well-formedness checks.
//!
//! ```
//! use tdo_ir::{Program, Stmt, Expr, Access};
//! use tdo_ir::interp::{run, PureBackend};
//!
//! # fn main() -> Result<(), tdo_ir::interp::InterpError> {
//! let mut p = Program::new("axpy");
//! let x = p.add_array("x", vec![4]);
//! let i = p.fresh_var("i");
//! p.body = vec![Stmt::for_loop(i, Expr::Int(0), Expr::Int(4), 1, vec![
//!     Stmt::assign(Access { array: x, idx: vec![Expr::Var(i)] },
//!                  Expr::mul(Expr::Var(i), Expr::Float(3.0))),
//! ])];
//! let mut backend = PureBackend::for_program(&p);
//! run(&p, &mut backend)?;
//! assert_eq!(backend.array(x), &[0.0, 3.0, 6.0, 9.0]);
//! # Ok(())
//! # }
//! ```

pub mod affine;
pub mod expr;
pub mod interp;
pub mod printer;
pub mod stmt;
pub mod types;
pub mod verify;

pub use affine::{AffineAccess, AffineExpr};
pub use expr::{Access, BinOp, Expr, UnOp};
pub use stmt::{Assign, CallArg, CallStmt, CmpOp, Cond, ForLoop, IfStmt, Stmt};
pub use types::{ArrayDecl, ArrayId, Program, VarId};
