//! Core identifiers and the program container.

use std::fmt;

/// Identifies an array (or scalar, a 0-dimensional array) in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

/// Identifies an integer loop variable in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Declaration of an `f32` array. Scalars are 0-dimensional arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension (compile-time constants, PolyBench-style).
    pub dims: Vec<usize>,
    /// Optional initial value for scalars (e.g. `float alpha = 1.5;`).
    pub scalar_init: Option<f64>,
}

impl ArrayDecl {
    /// Total element count (1 for scalars).
    pub fn elem_count(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    /// Row-major strides, innermost last.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Whether this is a scalar.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// A whole compilation unit: array declarations plus the kernel body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Kernel name (from the source function).
    pub name: String,
    /// Array/scalar declarations, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Loop variable names, indexed by [`VarId`].
    pub vars: Vec<String>,
    /// Kernel body.
    pub body: Vec<crate::stmt::Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), ..Program::default() }
    }

    /// Declares an array, returning its id.
    pub fn add_array(&mut self, name: impl Into<String>, dims: Vec<usize>) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), dims, scalar_init: None });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares a scalar with an optional initial value, returning its id.
    pub fn add_scalar(&mut self, name: impl Into<String>, init: Option<f64>) -> ArrayId {
        self.arrays.push(ArrayDecl { name: name.into(), dims: Vec::new(), scalar_init: init });
        ArrayId(self.arrays.len() - 1)
    }

    /// Creates a fresh loop variable, returning its id.
    pub fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(name.into());
        VarId(self.vars.len() - 1)
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// The declaration of an array.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (from another program).
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0]
    }

    /// The name of a loop variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let d = ArrayDecl { name: "A".into(), dims: vec![4, 5, 6], scalar_init: None };
        assert_eq!(d.strides(), vec![30, 6, 1]);
        assert_eq!(d.elem_count(), 120);
    }

    #[test]
    fn scalars_have_one_element() {
        let d = ArrayDecl { name: "alpha".into(), dims: vec![], scalar_init: Some(1.5) };
        assert!(d.is_scalar());
        assert_eq!(d.elem_count(), 1);
        assert_eq!(d.strides(), Vec::<usize>::new());
    }

    #[test]
    fn program_bookkeeping() {
        let mut p = Program::new("k");
        let a = p.add_array("A", vec![8, 8]);
        let s = p.add_scalar("alpha", Some(2.0));
        let v = p.fresh_var("i");
        assert_eq!(p.array_by_name("A"), Some(a));
        assert_eq!(p.array_by_name("alpha"), Some(s));
        assert_eq!(p.array_by_name("nope"), None);
        assert_eq!(p.var_name(v), "i");
        assert_eq!(p.array(s).scalar_init, Some(2.0));
    }
}
