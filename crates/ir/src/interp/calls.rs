//! Canonical argument layouts of the `polly_cim*` runtime calls.
//!
//! Loop Tactics emits these calls (Listing 1); both the pure backend and
//! the machine-coupled executor parse them with the helpers here, so the
//! ABI is defined in exactly one place.

use super::{InterpError, ResolvedArg, Value};
use crate::types::ArrayId;

/// Parsed `polly_cimBlasSGemm` / `polly_cimBlasSGemmView` arguments.
///
/// The `View` variant adds `(row, col)` origins into each operand so that
/// compiler-tiled code (Listing 3) can hand sub-matrices to the runtime;
/// the plain call leaves all origins at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmCall {
    /// Transpose `A`.
    pub trans_a: bool,
    /// Transpose `B` (unsupported by the device; kept for ABI fidelity).
    pub trans_b: bool,
    /// Result rows.
    pub m: usize,
    /// Result columns.
    pub n: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Product scale.
    pub alpha: f64,
    /// Left operand.
    pub a: ArrayId,
    /// Leading dimension of `A`.
    pub lda: usize,
    /// `(row, col)` origin into `A`.
    pub a_off: (usize, usize),
    /// Right operand.
    pub b: ArrayId,
    /// Leading dimension of `B`.
    pub ldb: usize,
    /// `(row, col)` origin into `B`.
    pub b_off: (usize, usize),
    /// Accumulator scale.
    pub beta: f64,
    /// Result operand.
    pub c: ArrayId,
    /// Leading dimension of `C`.
    pub ldc: usize,
    /// `(row, col)` origin into `C`.
    pub c_off: (usize, usize),
}

/// Parsed `polly_cimBlasSGemv` arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemvCall {
    /// Transpose `A`.
    pub trans_a: bool,
    /// Output length.
    pub m: usize,
    /// Input length.
    pub k: usize,
    /// Product scale.
    pub alpha: f64,
    /// Matrix operand.
    pub a: ArrayId,
    /// Leading dimension of `A`.
    pub lda: usize,
    /// Input vector.
    pub x: ArrayId,
    /// Accumulator scale.
    pub beta: f64,
    /// Output vector.
    pub y: ArrayId,
}

/// Parsed `polly_cimBlasGemmBatched` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedCall {
    /// Shared GEMM shape/scales.
    pub template: GemmCall,
    /// Per-problem `(A, B, C)` operands.
    pub problems: Vec<(ArrayId, ArrayId, ArrayId)>,
}

/// Parsed `polly_cimConv2d` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvCall {
    /// Input image.
    pub img: ArrayId,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Filter.
    pub filt: ArrayId,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// Output image.
    pub out: ArrayId,
}

/// Any recognized runtime call.
#[derive(Debug, Clone, PartialEq)]
pub enum CimCall {
    /// `polly_cimInit(device)`.
    Init(i64),
    /// `polly_cimMalloc(array)`.
    Malloc(ArrayId),
    /// `polly_cimHostToDev(array)`.
    HostToDev(ArrayId),
    /// `polly_cimDevToHost(array)`.
    DevToHost(ArrayId),
    /// `polly_cimFree(array)`.
    Free(ArrayId),
    /// `polly_cimPin(array)`: residency-placement hint — the array's
    /// contents are stable across the upcoming kernels, so the runtime
    /// may keep it installed on its tiles between calls.
    Pin(ArrayId),
    /// `polly_cimBlasSGemm(...)`.
    Gemm(GemmCall),
    /// `polly_cimBlasSGemv(...)`.
    Gemv(GemvCall),
    /// `polly_cimBlasGemmBatched(...)`.
    Batched(BatchedCall),
    /// `polly_cimConv2d(...)`.
    Conv(ConvCall),
}

struct Args<'a> {
    callee: &'a str,
    args: &'a [ResolvedArg],
    at: usize,
}

impl<'a> Args<'a> {
    fn num(&mut self) -> Result<f64, InterpError> {
        match self.args.get(self.at) {
            Some(ResolvedArg::Num(v)) => {
                self.at += 1;
                Ok(v.as_f64())
            }
            other => Err(InterpError::BadCallArgs(format!(
                "{}: expected numeric argument {} (got {other:?})",
                self.callee, self.at
            ))),
        }
    }

    fn usize(&mut self) -> Result<usize, InterpError> {
        let v = self.num()?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(InterpError::BadCallArgs(format!(
                "{}: argument {} must be a non-negative integer (got {v})",
                self.callee,
                self.at - 1
            )));
        }
        Ok(v as usize)
    }

    fn flag(&mut self) -> Result<bool, InterpError> {
        Ok(self.usize()? != 0)
    }

    fn array(&mut self) -> Result<ArrayId, InterpError> {
        match self.args.get(self.at) {
            Some(ResolvedArg::Array(id)) => {
                self.at += 1;
                Ok(*id)
            }
            other => Err(InterpError::BadCallArgs(format!(
                "{}: expected array argument {} (got {other:?})",
                self.callee, self.at
            ))),
        }
    }

    fn finish(&self) -> Result<(), InterpError> {
        if self.at == self.args.len() {
            Ok(())
        } else {
            Err(InterpError::BadCallArgs(format!(
                "{}: {} trailing arguments",
                self.callee,
                self.args.len() - self.at
            )))
        }
    }
}

/// Parses a resolved runtime call.
///
/// # Errors
///
/// [`InterpError::UnknownCall`] for unrecognized callees and
/// [`InterpError::BadCallArgs`] for malformed argument lists.
pub fn parse(callee: &str, args: &[ResolvedArg]) -> Result<CimCall, InterpError> {
    let mut a = Args { callee, args, at: 0 };
    let call = match callee {
        "polly_cimInit" => {
            let dev = a.num()? as i64;
            CimCall::Init(dev)
        }
        "polly_cimMalloc" => CimCall::Malloc(a.array()?),
        "polly_cimHostToDev" => CimCall::HostToDev(a.array()?),
        "polly_cimDevToHost" => CimCall::DevToHost(a.array()?),
        "polly_cimFree" => CimCall::Free(a.array()?),
        "polly_cimPin" => CimCall::Pin(a.array()?),
        "polly_cimBlasSGemm" => CimCall::Gemm(parse_gemm(&mut a)?),
        "polly_cimBlasSGemmView" => CimCall::Gemm(parse_gemm_view(&mut a)?),
        "polly_cimBlasSGemv" => CimCall::Gemv(GemvCall {
            trans_a: a.flag()?,
            m: a.usize()?,
            k: a.usize()?,
            alpha: a.num()?,
            a: a.array()?,
            lda: a.usize()?,
            x: a.array()?,
            beta: a.num()?,
            y: a.array()?,
        }),
        "polly_cimBlasGemmBatched" => {
            let trans_a = a.flag()?;
            let trans_b = a.flag()?;
            let m = a.usize()?;
            let n = a.usize()?;
            let k = a.usize()?;
            let alpha = a.num()?;
            let lda = a.usize()?;
            let ldb = a.usize()?;
            let beta = a.num()?;
            let ldc = a.usize()?;
            let count = a.usize()?;
            let mut problems = Vec::with_capacity(count);
            for _ in 0..count {
                problems.push((a.array()?, a.array()?, a.array()?));
            }
            // Placeholder ids; per-problem operands come from `problems`.
            let template = GemmCall {
                trans_a,
                trans_b,
                m,
                n,
                k,
                alpha,
                a: ArrayId(usize::MAX),
                lda,
                a_off: (0, 0),
                b: ArrayId(usize::MAX),
                ldb,
                b_off: (0, 0),
                beta,
                c: ArrayId(usize::MAX),
                ldc,
                c_off: (0, 0),
            };
            CimCall::Batched(BatchedCall { template, problems })
        }
        "polly_cimConv2d" => CimCall::Conv(ConvCall {
            img: a.array()?,
            h: a.usize()?,
            w: a.usize()?,
            filt: a.array()?,
            fh: a.usize()?,
            fw: a.usize()?,
            out: a.array()?,
        }),
        other => return Err(InterpError::UnknownCall(other.into())),
    };
    a.finish()?;
    Ok(call)
}

/// Convenience constructor for resolved numeric args in tests.
pub fn num(v: f64) -> ResolvedArg {
    ResolvedArg::Num(Value::F(v))
}

/// Convenience constructor for resolved integer args in tests.
pub fn int(v: i64) -> ResolvedArg {
    ResolvedArg::Num(Value::I(v))
}

/// Convenience constructor for resolved array args in tests.
pub fn arr(i: usize) -> ResolvedArg {
    ResolvedArg::Array(ArrayId(i))
}

fn parse_gemm(a: &mut Args<'_>) -> Result<GemmCall, InterpError> {
    Ok(GemmCall {
        trans_a: a.flag()?,
        trans_b: a.flag()?,
        m: a.usize()?,
        n: a.usize()?,
        k: a.usize()?,
        alpha: a.num()?,
        a: a.array()?,
        lda: a.usize()?,
        a_off: (0, 0),
        b: a.array()?,
        ldb: a.usize()?,
        b_off: (0, 0),
        beta: a.num()?,
        c: a.array()?,
        ldc: a.usize()?,
        c_off: (0, 0),
    })
}

fn parse_gemm_view(a: &mut Args<'_>) -> Result<GemmCall, InterpError> {
    Ok(GemmCall {
        trans_a: a.flag()?,
        trans_b: a.flag()?,
        m: a.usize()?,
        n: a.usize()?,
        k: a.usize()?,
        alpha: a.num()?,
        a: a.array()?,
        lda: a.usize()?,
        a_off: (a.usize()?, a.usize()?),
        b: a.array()?,
        ldb: a.usize()?,
        b_off: (a.usize()?, a.usize()?),
        beta: a.num()?,
        c: a.array()?,
        ldc: a.usize()?,
        c_off: (a.usize()?, a.usize()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_gemm_call() {
        let args = [
            int(0),
            int(0),
            int(4),
            int(4),
            int(4),
            num(1.5),
            arr(0),
            int(4),
            arr(1),
            int(4),
            num(0.0),
            arr(2),
            int(4),
        ];
        let call = parse("polly_cimBlasSGemm", &args).expect("parses");
        let CimCall::Gemm(g) = call else { panic!("wrong variant") };
        assert_eq!(g.m, 4);
        assert_eq!(g.alpha, 1.5);
        assert_eq!(g.c, ArrayId(2));
        assert!(!g.trans_a);
    }

    #[test]
    fn parse_batched_call() {
        let args = [
            int(0),
            int(0),
            int(2),
            int(2),
            int(2),
            num(1.0),
            int(2),
            int(2),
            num(0.0),
            int(2),
            int(2), // count
            arr(0),
            arr(1),
            arr(2),
            arr(0),
            arr(3),
            arr(4),
        ];
        let call = parse("polly_cimBlasGemmBatched", &args).expect("parses");
        let CimCall::Batched(b) = call else { panic!("wrong variant") };
        assert_eq!(b.problems.len(), 2);
        assert_eq!(b.problems[0].0, b.problems[1].0); // shared A
    }

    #[test]
    fn unknown_callee_rejected() {
        assert!(matches!(parse("cudaMalloc", &[]), Err(InterpError::UnknownCall(_))));
    }

    #[test]
    fn trailing_arguments_rejected() {
        let args = [int(0), int(7)];
        assert!(matches!(parse("polly_cimInit", &args), Err(InterpError::BadCallArgs(_))));
    }

    #[test]
    fn wrong_kind_rejected() {
        let args = [arr(0)];
        assert!(matches!(parse("polly_cimInit", &args), Err(InterpError::BadCallArgs(_))));
        let args = [int(0)];
        assert!(matches!(parse("polly_cimMalloc", &args), Err(InterpError::BadCallArgs(_))));
    }

    #[test]
    fn simple_memory_calls() {
        assert_eq!(parse("polly_cimInit", &[int(0)]).unwrap(), CimCall::Init(0));
        assert_eq!(parse("polly_cimMalloc", &[arr(3)]).unwrap(), CimCall::Malloc(ArrayId(3)));
        assert_eq!(parse("polly_cimDevToHost", &[arr(1)]).unwrap(), CimCall::DevToHost(ArrayId(1)));
    }
}
