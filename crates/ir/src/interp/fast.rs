//! Affine fast path for innermost loops.
//!
//! The tree-walking interpreter pays a full `Expr` traversal plus one
//! `backend.cost` call per emitted event for every iteration. Kernels
//! spend almost all of their time in innermost loops whose body is a
//! single assignment with affine subscripts (`C[i][j] = C[i][j] + ...`),
//! so those loops are compiled once into a [`FastBody`] template:
//!
//! * every subscript is lowered to an affine form over the loop
//!   variables, and the per-dimension bounds checks are discharged for
//!   the *whole* iteration space by testing the two endpoints (an affine
//!   index is monotonic in the inner variable);
//! * the per-iteration cost events are counted structurally at compile
//!   time and retired in bulk (`cost(ev, n * trips)`) — the cost model
//!   only observes totals, and the cache simulator orders on the
//!   `load`/`store` calls, which still issue individually and in the
//!   exact order of the slow path;
//! * the assignment value is evaluated from a pre-resolved template with
//!   the same f32 rounding rules as [`super::Interp::apply_bin`].
//!
//! Anything the template cannot prove (non-affine subscripts, integer
//! division, multi-statement bodies, an endpoint out of bounds) falls
//! back to the slow path, so observable behavior — values, cost totals,
//! errors — is identical by construction.

use super::{Backend, CostEvent, Value};
use crate::expr::{Access, BinOp, Expr, UnOp};
use crate::stmt::{ForLoop, Stmt};
use crate::types::{ArrayId, Program};

/// Census slots, one per [`CostEvent`] variant.
const EVENTS: [CostEvent; 10] = [
    CostEvent::IntAlu,
    CostEvent::IntMul,
    CostEvent::FpAdd,
    CostEvent::FpMul,
    CostEvent::FpDiv,
    CostEvent::Load,
    CostEvent::Store,
    CostEvent::Cmp,
    CostEvent::Branch,
    CostEvent::CallOverhead,
];

fn slot(ev: CostEvent) -> usize {
    EVENTS.iter().position(|e| *e == ev).expect("every event has a slot")
}

/// `c + sum(coeffs[v] * env[v])` over all program variables.
#[derive(Clone, Debug)]
struct Affine {
    c: i64,
    coeffs: Vec<i64>,
}

impl Affine {
    fn constant(c: i64, vars: usize) -> Self {
        Affine { c, coeffs: vec![0; vars] }
    }

    fn var(v: usize, vars: usize) -> Self {
        let mut a = Affine::constant(0, vars);
        a.coeffs[v] = 1;
        a
    }

    fn is_const(&self) -> bool {
        self.coeffs.iter().all(|c| *c == 0)
    }

    fn add(mut self, o: &Affine) -> Self {
        self.c += o.c;
        for (a, b) in self.coeffs.iter_mut().zip(&o.coeffs) {
            *a += b;
        }
        self
    }

    fn sub(mut self, o: &Affine) -> Self {
        self.c -= o.c;
        for (a, b) in self.coeffs.iter_mut().zip(&o.coeffs) {
            *a -= b;
        }
        self
    }

    fn neg(mut self) -> Self {
        self.c = -self.c;
        for a in &mut self.coeffs {
            *a = -*a;
        }
        self
    }

    fn scale(mut self, k: i64) -> Self {
        self.c *= k;
        for a in &mut self.coeffs {
            *a *= k;
        }
        self
    }

    /// Value under `env` with variable `inner` contributing zero.
    fn base(&self, env: &[i64], inner: usize) -> i64 {
        let mut v = self.c;
        for (i, k) in self.coeffs.iter().enumerate() {
            if i != inner && *k != 0 {
                v += k * env[i];
            }
        }
        v
    }
}

/// Lowers an index expression to affine form, tallying the cost events
/// the slow-path `eval` would emit for it. Partial census updates from a
/// failed lowering are harmless: any `None` discards the whole template.
fn affine_expr(e: &Expr, vars: usize, costs: &mut [u64; 10]) -> Option<Affine> {
    match e {
        Expr::Int(v) => Some(Affine::constant(*v, vars)),
        Expr::Var(v) => Some(Affine::var(v.0, vars)),
        Expr::Float(_) | Expr::Load(_) => None,
        Expr::Unary(UnOp::Neg, e) => {
            let a = affine_expr(e, vars, costs)?;
            costs[slot(CostEvent::IntAlu)] += 1;
            Some(a.neg())
        }
        Expr::Bin(op, l, r) => {
            let a = affine_expr(l, vars, costs)?;
            let b = affine_expr(r, vars, costs)?;
            match op {
                BinOp::Add => {
                    costs[slot(CostEvent::IntAlu)] += 1;
                    Some(a.add(&b))
                }
                BinOp::Sub => {
                    costs[slot(CostEvent::IntAlu)] += 1;
                    Some(a.sub(&b))
                }
                BinOp::Mul => {
                    costs[slot(CostEvent::IntMul)] += 1;
                    if b.is_const() {
                        Some(a.scale(b.c))
                    } else if a.is_const() {
                        Some(b.scale(a.c))
                    } else {
                        None // quadratic
                    }
                }
                // Div can fault; Min/Max are not affine.
                BinOp::Div | BinOp::Min | BinOp::Max => None,
            }
        }
    }
}

/// A lowered array access: per-dimension affine subscripts (with their
/// extents, for the endpoint bounds proof) plus the row-major flattened
/// affine index.
struct AccessPlan {
    array: ArrayId,
    dims: Vec<(Affine, usize)>,
    flat: Affine,
}

fn compile_access(prog: &Program, a: &Access, costs: &mut [u64; 10]) -> Option<AccessPlan> {
    let decl = prog.array(a.array);
    if a.idx.len() != decl.dims.len() {
        return None; // slow path reports the TypeError
    }
    let vars = prog.vars.len();
    let mut flat = Affine::constant(0, vars);
    let mut dims = Vec::with_capacity(a.idx.len());
    for (d, e) in a.idx.iter().enumerate() {
        let aff = affine_expr(e, vars, costs)?;
        // One multiply-accumulate of address arithmetic per dim.
        costs[slot(CostEvent::IntAlu)] += 1;
        flat = flat.scale(decl.dims[d] as i64).add(&aff);
        dims.push((aff, decl.dims[d]));
    }
    Some(AccessPlan { array: a.array, dims, flat })
}

/// Pre-resolved assignment value. Loads refer into `FastBody::loads` by
/// position; their flattened addresses are resolved per loop entry.
enum FastExpr {
    I(i64),
    F(f64),
    Var(usize),
    Load(usize),
    Neg(Box<FastExpr>),
    Bin(BinOp, Box<FastExpr>, Box<FastExpr>),
}

/// Compiles a value expression, returning the template and whether it is
/// integer-typed. The structural type exactly predicts the runtime
/// `Value` variant (literals and loads are fixed, `Bin` is integer iff
/// both operands are), which is what lets the census pick the right
/// event per operation ahead of time.
fn compile_expr(
    prog: &Program,
    e: &Expr,
    costs: &mut [u64; 10],
    loads: &mut Vec<AccessPlan>,
) -> Option<(FastExpr, bool)> {
    match e {
        Expr::Int(v) => Some((FastExpr::I(*v), true)),
        Expr::Float(v) => Some((FastExpr::F(*v), false)),
        Expr::Var(v) => Some((FastExpr::Var(v.0), true)),
        Expr::Load(a) => {
            let plan = compile_access(prog, a, costs)?;
            costs[slot(CostEvent::Load)] += 1;
            loads.push(plan);
            Some((FastExpr::Load(loads.len() - 1), false))
        }
        Expr::Unary(UnOp::Neg, e) => {
            let (n, is_int) = compile_expr(prog, e, costs, loads)?;
            costs[slot(if is_int { CostEvent::IntAlu } else { CostEvent::FpAdd })] += 1;
            Some((FastExpr::Neg(Box::new(n)), is_int))
        }
        Expr::Bin(op, l, r) => {
            let (ln, li) = compile_expr(prog, l, costs, loads)?;
            let (rn, ri) = compile_expr(prog, r, costs, loads)?;
            let is_int = li && ri;
            let ev = if is_int {
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => CostEvent::IntAlu,
                    BinOp::Mul => CostEvent::IntMul,
                    // Integer division can fault mid-loop; keep it on the
                    // slow path so the error surfaces identically.
                    BinOp::Div => return None,
                }
            } else {
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => CostEvent::FpAdd,
                    BinOp::Mul => CostEvent::FpMul,
                    BinOp::Div => CostEvent::FpDiv,
                }
            };
            costs[slot(ev)] += 1;
            Some((FastExpr::Bin(*op, Box::new(ln), Box::new(rn)), is_int))
        }
    }
}

/// Evaluates a template with loads resolved by `ld` (slot index → value):
/// a backend load in the scalar path, a pre-gathered run buffer in the
/// batched path.
fn eval_expr(e: &FastExpr, env: &[i64], ld: &mut dyn FnMut(usize) -> f64) -> Value {
    match e {
        FastExpr::I(v) => Value::I(*v),
        FastExpr::F(v) => Value::F(*v),
        FastExpr::Var(v) => Value::I(env[*v]),
        FastExpr::Load(k) => Value::F(ld(*k)),
        FastExpr::Neg(e) => match eval_expr(e, env, ld) {
            Value::I(v) => Value::I(-v),
            Value::F(v) => Value::F(-v),
        },
        FastExpr::Bin(op, l, r) => {
            let a = eval_expr(l, env, ld);
            let b = eval_expr(r, env, ld);
            if let (Value::I(x), Value::I(y)) = (a, b) {
                return Value::I(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Div => unreachable!("integer division is rejected at compile time"),
                });
            }
            let (x, y) = (a.as_f64(), b.as_f64());
            // Same f32 rounding rules as the slow path's apply_bin.
            Value::F(match op {
                BinOp::Add => (x as f32 + y as f32) as f64,
                BinOp::Sub => (x as f32 - y as f32) as f64,
                BinOp::Mul => (x as f32 * y as f32) as f64,
                BinOp::Div => (x as f32 / y as f32) as f64,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            })
        }
    }
}

/// A compiled innermost loop: `for i in lo..hi step s { target = value }`
/// with everything affine. Cached per `ForLoop` node by the interpreter.
pub(super) struct FastBody {
    target: AccessPlan,
    loads: Vec<AccessPlan>,
    value: FastExpr,
    /// Cost events one iteration emits on the slow path, by [`EVENTS`] slot.
    costs: [u64; 10],
}

impl FastBody {
    /// Compiles the loop body, or `None` if any part of it is outside the
    /// fast path's provable subset.
    pub(super) fn compile(prog: &Program, l: &ForLoop) -> Option<FastBody> {
        if l.step <= 0 || l.body.len() != 1 {
            return None;
        }
        let Stmt::Assign(a) = &l.body[0] else { return None };
        let mut costs = [0u64; 10];
        // Loop head per iteration: compare, branch, induction increment.
        costs[slot(CostEvent::Cmp)] += 1;
        costs[slot(CostEvent::Branch)] += 1;
        costs[slot(CostEvent::IntAlu)] += 1;
        let mut loads = Vec::new();
        // Body order mirrors the slow path: value first, then target.
        let (value, _) = compile_expr(prog, &a.value, &mut costs, &mut loads)?;
        let target = compile_access(prog, &a.target, &mut costs)?;
        costs[slot(CostEvent::Store)] += 1;
        Some(FastBody { target, loads, value, costs })
    }

    /// Executes the loop if the whole iteration space is provably in
    /// bounds; returns `false` to defer to the slow path. `lo`/`hi` are
    /// the already-evaluated loop bounds.
    pub(super) fn run<B: Backend>(
        &self,
        l: &ForLoop,
        lo: i64,
        hi: i64,
        env: &mut [i64],
        backend: &mut B,
    ) -> bool {
        let inner = l.var.0;
        if hi <= lo {
            // Zero-trip loop: just the exit check, env untouched.
            backend.cost(CostEvent::Cmp, 1);
            backend.cost(CostEvent::Branch, 1);
            return true;
        }
        let trips = (hi - lo + l.step - 1) / l.step;
        let last = lo + (trips - 1) * l.step;
        // An affine subscript is monotonic in the inner variable, so
        // checking the first and last iterations bounds them all.
        let resolve = |plan: &AccessPlan| -> Option<(i64, i64)> {
            for (aff, extent) in &plan.dims {
                let b = aff.base(env, inner);
                let s = aff.coeffs[inner];
                for i in [lo, last] {
                    let v = b + s * i;
                    if v < 0 || v as usize >= *extent {
                        return None;
                    }
                }
            }
            Some((plan.flat.base(env, inner), plan.flat.coeffs[inner]))
        };
        let Some(tflat) = resolve(&self.target) else { return false };
        let mut lflat = Vec::with_capacity(self.loads.len());
        for plan in &self.loads {
            let Some((base, stride)) = resolve(plan) else { return false };
            lflat.push((plan.array, base, stride));
        }
        // Retire the whole loop's census in bulk. The cost model only
        // accumulates totals; ordering is observable solely through
        // load/store, which the loop below still issues one by one.
        for (ev, n) in EVENTS.iter().zip(&self.costs) {
            if *n > 0 {
                backend.cost(*ev, n * trips as u64);
            }
        }
        // Loop exit check.
        backend.cost(CostEvent::Cmp, 1);
        backend.cost(CostEvent::Branch, 1);
        if backend.prefers_bulk_runs() && self.runs_may_batch(tflat, &lflat, lo, last) {
            self.run_batched(l.step, lo, trips, tflat, &lflat, env, inner, backend);
            return true;
        }
        let mut i = lo;
        while i < hi {
            env[inner] = i;
            let v = eval_expr(&self.value, env, &mut |k| {
                let (arr, base, stride) = lflat[k];
                backend.load(arr, (base + stride * i) as usize) as f64
            })
            .as_f64();
            backend.store(self.target.array, (tflat.0 + tflat.1 * i) as usize, v as f32);
            i += l.step;
        }
        true
    }

    /// Whether batching the loop into per-array runs preserves scalar
    /// semantics: every load must be unaffected by the loop's own stores.
    /// Distinct arrays never alias (separate allocations). For a load of
    /// the target array, three safe shapes: the *same* affine progression
    /// as the store with a nonzero stride (each iteration reads its own
    /// element before writing it, and never one a previous iteration
    /// wrote — the reduction `C[i] = C[i] + …`), the same progression
    /// with stride zero (the inner-product accumulation `C[i][j] += …`
    /// over an outer subscript — carried through a register by
    /// [`FastBody::run_batched`], bit-exact because the scalar loop's
    /// f32 chain is reproduced operation for operation), or index ranges
    /// that are provably disjoint. Anything else — e.g. the recurrence
    /// `A[i] = A[i-1] + …` — keeps the element-ordered path.
    fn runs_may_batch(
        &self,
        tflat: (i64, i64),
        lflat: &[(ArrayId, i64, i64)],
        lo: i64,
        last: i64,
    ) -> bool {
        let range = |base: i64, stride: i64| {
            let (a, b) = (base + stride * lo, base + stride * last);
            (a.min(b), a.max(b))
        };
        let (tmin, tmax) = range(tflat.0, tflat.1);
        for &(arr, base, stride) in lflat {
            if arr != self.target.array {
                continue;
            }
            if (base, stride) == tflat {
                continue;
            }
            let (lmin, lmax) = range(base, stride);
            if tmax < lmin || lmax < tmin {
                continue;
            }
            return false;
        }
        true
    }

    /// Batched execution: gather each load plan's chunk with one
    /// [`Backend::load_run`], evaluate the chunk from the buffers, write
    /// it back with one [`Backend::store_run`]. Values and cost totals
    /// are identical to the element loop (guarded by
    /// [`FastBody::runs_may_batch`]); only the access interleaving
    /// changes, which is exactly what a run-capable backend asks for via
    /// [`Backend::prefers_bulk_runs`].
    #[allow(clippy::too_many_arguments)]
    fn run_batched<B: Backend>(
        &self,
        step: i64,
        lo: i64,
        trips: i64,
        tflat: (i64, i64),
        lflat: &[(ArrayId, i64, i64)],
        env: &mut [i64],
        inner: usize,
        backend: &mut B,
    ) {
        const CHUNK: usize = 512;
        let width = CHUNK.min(trips as usize);
        // With a zero store stride, loads of the same (base, stride) form a
        // loop-carried accumulation (`C[i][j] += A[i][k] * B[k][j]` over k):
        // each iteration reads the value the previous one stored. Those
        // slots resolve from a register instead of the gathered buffer —
        // the f32 operation chain is the scalar loop's, bit for bit — while
        // the gather and writeback still issue the same number of accesses
        // to the target's line as the element loop did.
        let carried: Vec<bool> = lflat
            .iter()
            .map(|&(arr, base, stride)| {
                tflat.1 == 0 && arr == self.target.array && (base, stride) == tflat
            })
            .collect();
        let carry = carried.iter().any(|&c| c);
        let mut acc = 0f32;
        let mut bufs: Vec<Vec<f32>> = vec![vec![0.0; width]; lflat.len()];
        let mut out = vec![0.0f32; width];
        let mut t0: i64 = 0;
        while t0 < trips {
            let m = CHUNK.min((trips - t0) as usize);
            let i0 = lo + t0 * step;
            for (buf, &(arr, base, stride)) in bufs.iter_mut().zip(lflat) {
                backend.load_run(arr, base + stride * i0, stride * step, &mut buf[..m]);
            }
            if carry {
                // The target cell's current value; at chunk boundaries the
                // previous writeback left it equal to the carried register.
                let k = carried.iter().position(|&c| c).expect("carry set");
                acc = bufs[k][0];
            }
            for (j, slot) in out[..m].iter_mut().enumerate() {
                env[inner] = i0 + j as i64 * step;
                *slot = eval_expr(&self.value, env, &mut |k| {
                    if carried[k] {
                        acc as f64
                    } else {
                        bufs[k][j] as f64
                    }
                })
                .as_f64() as f32;
                if carry {
                    acc = *slot;
                }
            }
            backend.store_run(self.target.array, tflat.0 + tflat.1 * i0, tflat.1 * step, &out[..m]);
            t0 += m as i64;
        }
    }
}
