//! Pure (uncosted) backend: reference semantics for programs, including
//! the functional meaning of every `polly_cim*` runtime call.
//!
//! Transformation correctness tests run a program before and after a
//! rewrite on this backend and require identical array contents: the
//! rewritten program's accelerator calls must compute exactly what the
//! loops they replaced computed.

use super::calls::{parse, BatchedCall, CimCall, ConvCall, GemmCall, GemvCall};
use super::{Backend, InterpError, ResolvedArg};
use crate::types::{ArrayId, Program};

/// Reference storage backend.
#[derive(Debug, Clone)]
pub struct PureBackend {
    arrays: Vec<Vec<f32>>,
}

impl PureBackend {
    /// Allocates zeroed storage for every array of `prog`, applying scalar
    /// initializers.
    pub fn for_program(prog: &Program) -> Self {
        let arrays = prog
            .arrays
            .iter()
            .map(|d| {
                let mut v = vec![0f32; d.elem_count()];
                if let Some(init) = d.scalar_init {
                    v[0] = init as f32;
                }
                v
            })
            .collect();
        PureBackend { arrays }
    }

    /// Contents of an array.
    pub fn array(&self, id: ArrayId) -> &[f32] {
        &self.arrays[id.0]
    }

    /// Overwrites an array's contents (harness initialization).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the declared element count.
    pub fn set_array(&mut self, id: ArrayId, data: &[f32]) {
        assert_eq!(self.arrays[id.0].len(), data.len(), "array size mismatch");
        self.arrays[id.0].copy_from_slice(data);
    }

    /// All arrays, in declaration order (for whole-state comparisons).
    pub fn into_arrays(self) -> Vec<Vec<f32>> {
        self.arrays
    }

    fn gemm(&mut self, g: &GemmCall) -> Result<(), InterpError> {
        let a = self.arrays[g.a.0].clone();
        let b = self.arrays[g.b.0].clone();
        let c = &mut self.arrays[g.c.0];
        let at = |i: usize, kk: usize| -> f32 {
            if g.trans_a {
                a[(g.a_off.0 + kk) * g.lda + g.a_off.1 + i]
            } else {
                a[(g.a_off.0 + i) * g.lda + g.a_off.1 + kk]
            }
        };
        let bt = |kk: usize, j: usize| -> f32 {
            if g.trans_b {
                b[(g.b_off.0 + j) * g.ldb + g.b_off.1 + kk]
            } else {
                b[(g.b_off.0 + kk) * g.ldb + g.b_off.1 + j]
            }
        };
        for i in 0..g.m {
            for j in 0..g.n {
                let mut acc = 0f32;
                for kk in 0..g.k {
                    acc += at(i, kk) * bt(kk, j);
                }
                let ci = (g.c_off.0 + i) * g.ldc + g.c_off.1 + j;
                let old = c[ci];
                c[ci] = g.alpha as f32 * acc + g.beta as f32 * old;
            }
        }
        Ok(())
    }

    fn gemv(&mut self, g: &GemvCall) -> Result<(), InterpError> {
        let a = self.arrays[g.a.0].clone();
        let x = self.arrays[g.x.0].clone();
        let y = &mut self.arrays[g.y.0];
        for i in 0..g.m {
            let mut acc = 0f32;
            for kk in 0..g.k {
                let av = if g.trans_a { a[kk * g.lda + i] } else { a[i * g.lda + kk] };
                acc += av * x[kk];
            }
            y[i] = g.alpha as f32 * acc + g.beta as f32 * y[i];
        }
        Ok(())
    }

    fn conv(&mut self, c: &ConvCall) -> Result<(), InterpError> {
        let img = self.arrays[c.img.0].clone();
        let filt = self.arrays[c.filt.0].clone();
        let out = &mut self.arrays[c.out.0];
        let (oh, ow) = (c.h - c.fh + 1, c.w - c.fw + 1);
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0f32;
                for fr in 0..c.fh {
                    for fc in 0..c.fw {
                        acc += filt[fr * c.fw + fc] * img[(oi + fr) * c.w + oj + fc];
                    }
                }
                // The matched source is a reduction (`out[i][j] += ...`):
                // accumulate into the existing output.
                out[oi * ow + oj] += acc;
            }
        }
        Ok(())
    }
}

impl Backend for PureBackend {
    fn load(&mut self, array: ArrayId, flat: usize) -> f32 {
        self.arrays[array.0][flat]
    }

    fn store(&mut self, array: ArrayId, flat: usize, v: f32) {
        self.arrays[array.0][flat] = v;
    }

    fn call(
        &mut self,
        _prog: &Program,
        callee: &str,
        args: &[ResolvedArg],
    ) -> Result<(), InterpError> {
        match parse(callee, args)? {
            CimCall::Init(_)
            | CimCall::Malloc(_)
            | CimCall::HostToDev(_)
            | CimCall::DevToHost(_)
            | CimCall::Free(_)
            | CimCall::Pin(_) => Ok(()), // single storage: data movement is a no-op
            CimCall::Gemm(g) => self.gemm(&g),
            CimCall::Gemv(g) => self.gemv(&g),
            CimCall::Batched(BatchedCall { template, problems }) => {
                for (a, b, c) in problems {
                    self.gemm(&GemmCall { a, b, c, ..template })?;
                }
                Ok(())
            }
            CimCall::Conv(c) => self.conv(&c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::calls::{arr, int, num};
    use super::*;

    fn prog_with(names: &[(&str, Vec<usize>)]) -> Program {
        let mut p = Program::new("t");
        for (n, d) in names {
            p.add_array(*n, d.clone());
        }
        p
    }

    #[test]
    fn gemm_call_semantics() {
        let p = prog_with(&[("A", vec![2, 2]), ("B", vec![2, 2]), ("C", vec![2, 2])]);
        let mut b = PureBackend::for_program(&p);
        b.set_array(ArrayId(0), &[1.0, 2.0, 3.0, 4.0]);
        b.set_array(ArrayId(1), &[5.0, 6.0, 7.0, 8.0]);
        let args = [
            int(0),
            int(0),
            int(2),
            int(2),
            int(2),
            num(1.0),
            arr(0),
            int(2),
            arr(1),
            int(2),
            num(0.0),
            arr(2),
            int(2),
        ];
        b.call(&p, "polly_cimBlasSGemm", &args).expect("gemm");
        assert_eq!(b.array(ArrayId(2)), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transposed_gemv_semantics() {
        let p = prog_with(&[("A", vec![2, 2]), ("x", vec![2]), ("y", vec![2])]);
        let mut b = PureBackend::for_program(&p);
        b.set_array(ArrayId(0), &[1.0, 2.0, 3.0, 4.0]);
        b.set_array(ArrayId(1), &[1.0, 1.0]);
        let args = [int(1), int(2), int(2), num(1.0), arr(0), int(2), arr(1), num(0.0), arr(2)];
        b.call(&p, "polly_cimBlasSGemv", &args).expect("gemv");
        assert_eq!(b.array(ArrayId(2)), &[4.0, 6.0]); // A^T x
    }

    #[test]
    fn conv_call_semantics() {
        let p = prog_with(&[("img", vec![3, 3]), ("f", vec![2, 2]), ("out", vec![2, 2])]);
        let mut b = PureBackend::for_program(&p);
        b.set_array(ArrayId(0), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        b.set_array(ArrayId(1), &[1.0, 0.0, 0.0, 1.0]);
        let args = [arr(0), int(3), int(3), arr(1), int(2), int(2), arr(2)];
        b.call(&p, "polly_cimConv2d", &args).expect("conv");
        assert_eq!(b.array(ArrayId(2)), &[6.0, 8.0, 12.0, 14.0]); // img[i][j]+img[i+1][j+1]
    }

    #[test]
    fn memory_management_calls_are_noops() {
        let p = prog_with(&[("A", vec![2])]);
        let mut b = PureBackend::for_program(&p);
        b.set_array(ArrayId(0), &[1.0, 2.0]);
        for callee in
            ["polly_cimMalloc", "polly_cimHostToDev", "polly_cimDevToHost", "polly_cimFree"]
        {
            b.call(&p, callee, &[arr(0)]).expect("noop");
        }
        b.call(&p, "polly_cimInit", &[int(0)]).expect("init");
        assert_eq!(b.array(ArrayId(0)), &[1.0, 2.0]);
    }

    #[test]
    fn scalar_init_applies() {
        let mut p = Program::new("t");
        let s = p.add_scalar("alpha", Some(2.5));
        let b = PureBackend::for_program(&p);
        assert_eq!(b.array(s), &[2.5]);
    }
}
