//! Affine forms over loop variables.
//!
//! Polly models statement domains and accesses as affine expressions; the
//! SCoP detection in `tdo-poly` and the access-pattern matchers in
//! `tdo-tactics` rely on recovering `sum(coeff_i * var_i) + c` shapes from
//! IR expressions.

use crate::expr::{Access, BinOp, Expr, UnOp};
use crate::types::{ArrayId, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// `sum(terms[v] * v) + constant` with integer coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineExpr {
    /// Per-variable coefficients (zero coefficients are not stored).
    pub terms: BTreeMap<VarId, i64>,
    /// Constant offset.
    pub constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr { terms: BTreeMap::new(), constant: c }
    }

    /// The single-variable expression `v`.
    pub fn var(v: VarId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        AffineExpr { terms, constant: 0 }
    }

    /// Coefficient of a variable (zero if absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms.get(&v).copied().unwrap_or(0)
    }

    /// Whether the expression is a pure constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the expression is exactly `1 * v` for some variable.
    pub fn as_single_var(&self) -> Option<VarId> {
        if self.constant == 0 && self.terms.len() == 1 {
            let (v, c) = self.terms.iter().next().expect("len 1");
            if *c == 1 {
                return Some(*v);
            }
        }
        None
    }

    /// Adds another affine expression.
    pub fn add(&self, o: &AffineExpr) -> AffineExpr {
        let mut out = self.clone();
        out.constant += o.constant;
        for (v, c) in &o.terms {
            let e = out.terms.entry(*v).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out
    }

    /// Subtracts another affine expression.
    pub fn sub(&self, o: &AffineExpr) -> AffineExpr {
        self.add(&o.scale(-1))
    }

    /// Multiplies by an integer.
    pub fn scale(&self, k: i64) -> AffineExpr {
        if k == 0 {
            return AffineExpr::constant(0);
        }
        AffineExpr {
            terms: self.terms.iter().map(|(v, c)| (*v, c * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// Evaluates under an environment mapping `VarId` index to value.
    pub fn eval(&self, env: &[i64]) -> i64 {
        self.constant + self.terms.iter().map(|(v, c)| c * env[v.0]).sum::<i64>()
    }

    /// Extracts an affine form from an IR expression, if it is affine with
    /// integer literals (loads and float literals are not affine).
    pub fn from_expr(e: &Expr) -> Option<AffineExpr> {
        match e {
            Expr::Int(c) => Some(AffineExpr::constant(*c)),
            Expr::Var(v) => Some(AffineExpr::var(*v)),
            Expr::Float(_) | Expr::Load(_) => None,
            Expr::Unary(UnOp::Neg, e) => Some(AffineExpr::from_expr(e)?.scale(-1)),
            Expr::Bin(op, l, r) => {
                let l = AffineExpr::from_expr(l);
                let r = AffineExpr::from_expr(r);
                match op {
                    BinOp::Add => Some(l?.add(&r?)),
                    BinOp::Sub => Some(l?.sub(&r?)),
                    BinOp::Mul => {
                        let (l, r) = (l?, r?);
                        if l.is_constant() {
                            Some(r.scale(l.constant))
                        } else if r.is_constant() {
                            Some(l.scale(r.constant))
                        } else {
                            None
                        }
                    }
                    BinOp::Div | BinOp::Min | BinOp::Max => None,
                }
            }
        }
    }

    /// Converts back to an IR expression (for codegen).
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = if self.constant != 0 || self.terms.is_empty() {
            Some(Expr::Int(self.constant))
        } else {
            None
        };
        for (v, c) in &self.terms {
            let term =
                if *c == 1 { Expr::Var(*v) } else { Expr::mul(Expr::Int(*c), Expr::Var(*v)) };
            acc = Some(match acc {
                None => term,
                Some(a) => Expr::add(a, term),
            });
        }
        acc.expect("at least the constant")
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            if *c == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{c}*{v}")?;
            }
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// An array access whose subscripts are all affine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineAccess {
    /// Accessed array.
    pub array: ArrayId,
    /// One affine subscript per dimension.
    pub subs: Vec<AffineExpr>,
}

impl AffineAccess {
    /// Extracts the affine form of an access, if every subscript is affine.
    pub fn from_access(a: &Access) -> Option<AffineAccess> {
        let subs = a.idx.iter().map(AffineExpr::from_expr).collect::<Option<Vec<_>>>()?;
        Some(AffineAccess { array: a.array, subs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn from_expr_handles_affine_shapes() {
        // 2*i + j - 3
        let e = Expr::sub(
            Expr::add(Expr::mul(Expr::Int(2), Expr::Var(v(0))), Expr::Var(v(1))),
            Expr::Int(3),
        );
        let a = AffineExpr::from_expr(&e).expect("affine");
        assert_eq!(a.coeff(v(0)), 2);
        assert_eq!(a.coeff(v(1)), 1);
        assert_eq!(a.constant, -3);
        assert_eq!(a.eval(&[10, 5]), 22);
    }

    #[test]
    fn non_affine_shapes_are_rejected() {
        // i * j
        let e = Expr::mul(Expr::Var(v(0)), Expr::Var(v(1)));
        assert!(AffineExpr::from_expr(&e).is_none());
        // i / 2
        let e = Expr::div(Expr::Var(v(0)), Expr::Int(2));
        assert!(AffineExpr::from_expr(&e).is_none());
        // loads are not affine
        let e = Expr::load(ArrayId(0), vec![Expr::Int(0)]);
        assert!(AffineExpr::from_expr(&e).is_none());
    }

    #[test]
    fn roundtrip_through_expr() {
        let mut a = AffineExpr::var(v(2)).scale(3);
        a.constant = 7;
        let e = a.to_expr();
        let back = AffineExpr::from_expr(&e).expect("affine");
        assert_eq!(a, back);
    }

    #[test]
    fn arithmetic_cancels_terms() {
        let a = AffineExpr::var(v(0)).add(&AffineExpr::var(v(1)));
        let b = a.sub(&AffineExpr::var(v(1)));
        assert_eq!(b.as_single_var(), Some(v(0)));
        assert!(!b.terms.contains_key(&v(1)));
    }

    #[test]
    fn single_var_detection() {
        assert_eq!(AffineExpr::var(v(3)).as_single_var(), Some(v(3)));
        assert_eq!(AffineExpr::var(v(3)).scale(2).as_single_var(), None);
        assert_eq!(AffineExpr::constant(5).as_single_var(), None);
    }

    #[test]
    fn affine_access_extraction() {
        let acc = Access {
            array: ArrayId(1),
            idx: vec![Expr::Var(v(0)), Expr::add(Expr::Var(v(1)), Expr::Int(1))],
        };
        let aa = AffineAccess::from_access(&acc).expect("affine");
        assert_eq!(aa.subs.len(), 2);
        assert_eq!(aa.subs[1].constant, 1);
    }

    #[test]
    fn display_formats() {
        let a = AffineExpr::var(v(0)).scale(2).add(&AffineExpr::constant(1));
        assert_eq!(format!("{a}"), "2*%0 + 1");
        assert_eq!(format!("{}", AffineExpr::constant(0)), "0");
    }
}
