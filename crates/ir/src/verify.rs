//! Structural verifier for IR programs.
//!
//! Catches malformed programs produced by front-end or transformation
//! bugs before they reach the interpreter: dangling ids, subscript-arity
//! mismatches, assignments to loop variables of sibling scopes, and
//! non-positive loop steps.

use crate::expr::{Access, Expr};
use crate::stmt::Stmt;
use crate::types::{Program, VarId};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An `ArrayId` outside the declaration table.
    DanglingArray(usize),
    /// A `VarId` outside the variable table.
    DanglingVar(usize),
    /// A loop variable used before any enclosing loop defines it.
    UndefinedVar(String),
    /// Subscript count differs from declared rank.
    RankMismatch {
        /// Array name.
        array: String,
        /// Subscripts used.
        used: usize,
        /// Declared rank.
        declared: usize,
    },
    /// Loop step must be positive.
    NonPositiveStep(String),
    /// The same variable is bound by two nested loops.
    ShadowedVar(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DanglingArray(i) => write!(f, "array id @{i} is not declared"),
            VerifyError::DanglingVar(i) => write!(f, "variable id %{i} is not declared"),
            VerifyError::UndefinedVar(n) => write!(f, "variable {n} used outside its loop"),
            VerifyError::RankMismatch { array, used, declared } => {
                write!(f, "{array} indexed with {used} subscripts, declared rank {declared}")
            }
            VerifyError::NonPositiveStep(n) => write!(f, "loop over {n} has non-positive step"),
            VerifyError::ShadowedVar(n) => write!(f, "loop variable {n} shadows an active loop"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a program.
///
/// # Errors
///
/// The first structural violation found.
pub fn verify(prog: &Program) -> Result<(), VerifyError> {
    let mut live: HashSet<VarId> = HashSet::new();
    verify_block(prog, &prog.body, &mut live)
}

fn verify_block(
    prog: &Program,
    stmts: &[Stmt],
    live: &mut HashSet<VarId>,
) -> Result<(), VerifyError> {
    for s in stmts {
        match s {
            Stmt::For(l) => {
                if l.var.0 >= prog.vars.len() {
                    return Err(VerifyError::DanglingVar(l.var.0));
                }
                if l.step <= 0 {
                    return Err(VerifyError::NonPositiveStep(prog.var_name(l.var).into()));
                }
                verify_expr(prog, &l.lo, live)?;
                verify_expr(prog, &l.hi, live)?;
                if !live.insert(l.var) {
                    return Err(VerifyError::ShadowedVar(prog.var_name(l.var).into()));
                }
                verify_block(prog, &l.body, live)?;
                live.remove(&l.var);
            }
            Stmt::Assign(a) => {
                verify_access(prog, &a.target, live)?;
                verify_expr(prog, &a.value, live)?;
            }
            Stmt::If(i) => {
                verify_expr(prog, &i.cond.lhs, live)?;
                verify_expr(prog, &i.cond.rhs, live)?;
                verify_block(prog, &i.then_body, live)?;
                verify_block(prog, &i.else_body, live)?;
            }
            Stmt::Call(c) => {
                for arg in &c.args {
                    match arg {
                        crate::stmt::CallArg::Value(e) => verify_expr(prog, e, live)?,
                        crate::stmt::CallArg::Array(id) => {
                            if id.0 >= prog.arrays.len() {
                                return Err(VerifyError::DanglingArray(id.0));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn verify_access(prog: &Program, a: &Access, live: &HashSet<VarId>) -> Result<(), VerifyError> {
    if a.array.0 >= prog.arrays.len() {
        return Err(VerifyError::DanglingArray(a.array.0));
    }
    let decl = prog.array(a.array);
    if a.idx.len() != decl.dims.len() {
        return Err(VerifyError::RankMismatch {
            array: decl.name.clone(),
            used: a.idx.len(),
            declared: decl.dims.len(),
        });
    }
    for e in &a.idx {
        verify_expr(prog, e, live)?;
    }
    Ok(())
}

fn verify_expr(prog: &Program, e: &Expr, live: &HashSet<VarId>) -> Result<(), VerifyError> {
    match e {
        Expr::Int(_) | Expr::Float(_) => Ok(()),
        Expr::Var(v) => {
            if v.0 >= prog.vars.len() {
                Err(VerifyError::DanglingVar(v.0))
            } else if !live.contains(v) {
                Err(VerifyError::UndefinedVar(prog.var_name(*v).into()))
            } else {
                Ok(())
            }
        }
        Expr::Load(a) => verify_access(prog, a, live),
        Expr::Unary(_, e) => verify_expr(prog, e, live),
        Expr::Bin(_, l, r) => {
            verify_expr(prog, l, live)?;
            verify_expr(prog, r, live)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Access, Expr};
    use crate::types::ArrayId;

    #[test]
    fn valid_program_passes() {
        let mut p = Program::new("ok");
        let a = p.add_array("A", vec![4]);
        let i = p.fresh_var("i");
        p.body = vec![Stmt::for_loop(
            i,
            Expr::Int(0),
            Expr::Int(4),
            1,
            vec![Stmt::assign(Access { array: a, idx: vec![Expr::Var(i)] }, Expr::Float(1.0))],
        )];
        verify(&p).expect("valid");
    }

    #[test]
    fn var_outside_loop_is_rejected() {
        let mut p = Program::new("bad");
        let a = p.add_array("A", vec![4]);
        let i = p.fresh_var("i");
        p.body = vec![Stmt::assign(Access { array: a, idx: vec![Expr::Var(i)] }, Expr::Float(1.0))];
        assert_eq!(verify(&p), Err(VerifyError::UndefinedVar("i".into())));
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut p = Program::new("bad");
        let a = p.add_array("A", vec![4, 4]);
        p.body = vec![Stmt::assign(Access { array: a, idx: vec![Expr::Int(0)] }, Expr::Float(1.0))];
        assert!(matches!(verify(&p), Err(VerifyError::RankMismatch { .. })));
    }

    #[test]
    fn dangling_ids_detected() {
        let mut p = Program::new("bad");
        p.body = vec![Stmt::assign(Access { array: ArrayId(7), idx: vec![] }, Expr::Float(1.0))];
        assert_eq!(verify(&p), Err(VerifyError::DanglingArray(7)));
    }

    #[test]
    fn shadowed_loop_variable_detected() {
        let mut p = Program::new("bad");
        let i = p.fresh_var("i");
        p.body = vec![Stmt::for_loop(
            i,
            Expr::Int(0),
            Expr::Int(2),
            1,
            vec![Stmt::for_loop(i, Expr::Int(0), Expr::Int(2), 1, vec![])],
        )];
        assert_eq!(verify(&p), Err(VerifyError::ShadowedVar("i".into())));
    }

    #[test]
    fn non_positive_step_detected() {
        let mut p = Program::new("bad");
        let i = p.fresh_var("i");
        p.body = vec![Stmt::for_loop(i, Expr::Int(0), Expr::Int(2), 0, vec![])];
        assert!(matches!(verify(&p), Err(VerifyError::NonPositiveStep(_))));
    }
}
