//! Statements of the loop IR.

use crate::expr::{Access, Expr};
use crate::types::{ArrayId, VarId};

/// Comparison operators for `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A comparison between two expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Cond {
    /// Operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// A counted loop `for (var = lo; var < hi; var += step)`.
///
/// The upper bound is exclusive and the step strictly positive; the
/// front-end normalizes other shapes or rejects them.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable.
    pub var: VarId,
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
    /// Step (positive).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// An assignment `target = value` (compound ops are expanded by the
/// front-end into `target = target op value`).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Store destination.
    pub target: Access,
    /// Value expression.
    pub value: Expr,
}

/// A two-way conditional.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// Condition.
    pub cond: Cond,
    /// Taken branch.
    pub then_body: Vec<Stmt>,
    /// Fallthrough branch.
    pub else_body: Vec<Stmt>,
}

/// Argument of a runtime call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// A value (dimension, scale factor, flag).
    Value(Expr),
    /// An array handle (rendered as `cim_<name>` by the printer).
    Array(ArrayId),
}

/// A call to the CIM runtime library (inserted by Loop Tactics; the
/// front-end never produces calls).
#[derive(Debug, Clone, PartialEq)]
pub struct CallStmt {
    /// Callee symbol, e.g. `"polly_cimBlasSGemm"`.
    pub callee: String,
    /// Arguments.
    pub args: Vec<CallArg>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Counted loop.
    For(ForLoop),
    /// Assignment.
    Assign(Assign),
    /// Conditional.
    If(IfStmt),
    /// Runtime-library call.
    Call(CallStmt),
}

impl Stmt {
    /// Convenience constructor for a loop.
    pub fn for_loop(var: VarId, lo: Expr, hi: Expr, step: i64, body: Vec<Stmt>) -> Stmt {
        Stmt::For(ForLoop { var, lo, hi, step, body })
    }

    /// Convenience constructor for an assignment.
    pub fn assign(target: Access, value: Expr) -> Stmt {
        Stmt::Assign(Assign { target, value })
    }

    /// Visits all statements in this subtree, pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::For(l) => l.body.iter().for_each(|s| s.visit(f)),
            Stmt::If(i) => {
                i.then_body.iter().for_each(|s| s.visit(f));
                i.else_body.iter().for_each(|s| s.visit(f));
            }
            Stmt::Assign(_) | Stmt::Call(_) => {}
        }
    }

    /// Counts assignments in this subtree (static, not dynamic).
    pub fn count_assigns(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |s| {
            if matches!(s, Stmt::Assign(_)) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ArrayId;

    #[test]
    fn visit_reaches_nested_statements() {
        let a = Access { array: ArrayId(0), idx: vec![Expr::Var(VarId(0))] };
        let inner = Stmt::assign(a.clone(), Expr::Float(0.0));
        let loop_stmt = Stmt::for_loop(VarId(0), Expr::Int(0), Expr::Int(4), 1, vec![inner]);
        assert_eq!(loop_stmt.count_assigns(), 1);
        let mut kinds = Vec::new();
        loop_stmt.visit(&mut |s| {
            kinds.push(match s {
                Stmt::For(_) => "for",
                Stmt::Assign(_) => "assign",
                Stmt::If(_) => "if",
                Stmt::Call(_) => "call",
            })
        });
        assert_eq!(kinds, vec!["for", "assign"]);
    }
}
