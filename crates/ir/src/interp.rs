//! IR interpreter with pluggable execution backends.
//!
//! One interpreter drives two very different executions:
//! * [`PureBackend`] — plain `Vec<f32>` storage, no cost model. Used for
//!   reference runs and for semantic-preservation tests of the polyhedral
//!   transformations (`tdo-poly`).
//! * the costed backend in `tdo-cim` — storage in simulated physical
//!   memory, every [`CostEvent`] retired on the Arm-A7 model, and
//!   `polly_cim*` calls dispatched to the real runtime library.
//!
//! Both backends receive the same [`CostEvent`] stream and the same
//! resolved runtime calls, so "host-only" and "host + CIM" executions are
//! numerically comparable by construction.

use crate::expr::{Access, BinOp, Expr, UnOp};
use crate::stmt::{CallArg, CallStmt, CmpOp, ForLoop, Stmt};
use crate::types::{ArrayId, Program};
use std::collections::HashMap;
use std::fmt;

/// Dynamic cost events emitted while interpreting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostEvent {
    /// Integer ALU operation (includes address arithmetic).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating add/sub/min/max.
    FpAdd,
    /// Floating multiply.
    FpMul,
    /// Floating divide.
    FpDiv,
    /// Array element load.
    Load,
    /// Array element store.
    Store,
    /// Compare.
    Cmp,
    /// Branch.
    Branch,
    /// Call overhead (argument setup, branch-and-link).
    CallOverhead,
}

/// Runtime interpretation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// An index left the declared extent.
    OutOfBounds {
        /// Array name.
        array: String,
        /// Flattened index that was requested.
        flat: i64,
        /// Element count of the array.
        len: usize,
    },
    /// An expression had the wrong type (e.g. float used as index).
    TypeError(String),
    /// A call statement named an unknown runtime entry point.
    UnknownCall(String),
    /// A call statement had malformed arguments.
    BadCallArgs(String),
    /// Backend-specific failure (e.g. device error), carried as text.
    Backend(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { array, flat, len } => {
                write!(f, "index {flat} out of bounds for {array} (len {len})")
            }
            InterpError::TypeError(s) => write!(f, "type error: {s}"),
            InterpError::UnknownCall(s) => write!(f, "unknown runtime call {s}"),
            InterpError::BadCallArgs(s) => write!(f, "bad call arguments: {s}"),
            InterpError::Backend(s) => write!(f, "backend error: {s}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// A dynamic value: loop variables are integers, data is floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Float (f32 data widened for evaluation).
    F(f64),
}

impl Value {
    /// As an index.
    ///
    /// # Errors
    ///
    /// Type error if the value is a float.
    pub fn as_index(self) -> Result<i64, InterpError> {
        match self {
            Value::I(v) => Ok(v),
            Value::F(v) => Err(InterpError::TypeError(format!("float {v} used as index"))),
        }
    }

    /// As a float (integers promote).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }
}

/// A resolved call argument handed to the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResolvedArg {
    /// Evaluated numeric argument.
    Num(Value),
    /// Array handle.
    Array(ArrayId),
}

/// Execution backend: storage, cost sink and runtime-call handler.
pub trait Backend {
    /// Reads element `flat` of `array`.
    fn load(&mut self, array: ArrayId, flat: usize) -> f32;

    /// Writes element `flat` of `array`.
    fn store(&mut self, array: ArrayId, flat: usize, v: f32);

    /// Whether the affine fast path may batch an inner loop's memory
    /// traffic into per-array runs ([`Backend::load_run`] /
    /// [`Backend::store_run`]) instead of issuing every element in strict
    /// program order. Batching keeps values and cost totals bit-identical
    /// but reorders accesses at run granularity, so backends that observe
    /// access *order* (recorders, differential references) keep the
    /// default `false`.
    fn prefers_bulk_runs(&self) -> bool {
        false
    }

    /// Reads `out.len()` elements of `array` at flat indices `flat`,
    /// `flat + stride`, … (default: scalar [`Backend::load`] loop).
    fn load_run(&mut self, array: ArrayId, flat: i64, stride: i64, out: &mut [f32]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.load(array, (flat + stride * i as i64) as usize);
        }
    }

    /// Writes `data` to `array` at flat indices `flat`, `flat + stride`, …
    /// (default: scalar [`Backend::store`] loop).
    fn store_run(&mut self, array: ArrayId, flat: i64, stride: i64, data: &[f32]) {
        for (i, v) in data.iter().enumerate() {
            self.store(array, (flat + stride * i as i64) as usize, *v);
        }
    }

    /// Receives `n` cost events (default: ignored).
    fn cost(&mut self, _ev: CostEvent, _n: u64) {}

    /// Handles a runtime-library call with resolved arguments.
    ///
    /// # Errors
    ///
    /// Unknown callee or malformed arguments.
    fn call(
        &mut self,
        prog: &Program,
        callee: &str,
        args: &[ResolvedArg],
    ) -> Result<(), InterpError>;
}

/// Runs a program to completion on the given backend.
///
/// # Errors
///
/// Propagates any [`InterpError`] from evaluation or the backend.
pub fn run<B: Backend>(prog: &Program, backend: &mut B) -> Result<(), InterpError> {
    let mut env = vec![0i64; prog.vars.len()];
    let mut interp = Interp { prog, backend, enable_fast: true, fast_loops: HashMap::new() };
    interp.exec_block(&prog.body, &mut env)
}

/// Runs a program with the affine fast path disabled — the reference
/// executor that differential tests compare [`run`] against.
///
/// # Errors
///
/// Propagates any [`InterpError`] from evaluation or the backend.
pub fn run_reference<B: Backend>(prog: &Program, backend: &mut B) -> Result<(), InterpError> {
    let mut env = vec![0i64; prog.vars.len()];
    let mut interp = Interp { prog, backend, enable_fast: false, fast_loops: HashMap::new() };
    interp.exec_block(&prog.body, &mut env)
}

struct Interp<'p, B: Backend> {
    prog: &'p Program,
    backend: &'p mut B,
    enable_fast: bool,
    /// Fast-path templates, keyed by `ForLoop` node address within the
    /// (immutably borrowed) program. `None` caches "not fast-path-able".
    fast_loops: HashMap<usize, Option<fast::FastBody>>,
}

impl<'p, B: Backend> Interp<'p, B> {
    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Vec<i64>) -> Result<(), InterpError> {
        for s in stmts {
            self.exec_stmt(s, env)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Vec<i64>) -> Result<(), InterpError> {
        match s {
            Stmt::For(l) => {
                let lo = self.eval(&l.lo, env)?.as_index()?;
                let hi = self.eval(&l.hi, env)?.as_index()?;
                if self.fast_loop(l, lo, hi, env) {
                    return Ok(());
                }
                let mut i = lo;
                while i < hi {
                    env[l.var.0] = i;
                    self.backend.cost(CostEvent::Cmp, 1);
                    self.backend.cost(CostEvent::Branch, 1);
                    self.backend.cost(CostEvent::IntAlu, 1);
                    self.exec_block(&l.body, env)?;
                    i += l.step;
                }
                // Loop exit check.
                self.backend.cost(CostEvent::Cmp, 1);
                self.backend.cost(CostEvent::Branch, 1);
                Ok(())
            }
            Stmt::Assign(a) => {
                let v = self.eval(&a.value, env)?.as_f64();
                let flat = self.flat_index(&a.target, env)?;
                self.backend.cost(CostEvent::Store, 1);
                self.backend.store(a.target.array, flat, v as f32);
                Ok(())
            }
            Stmt::If(i) => {
                let l = self.eval(&i.cond.lhs, env)?;
                let r = self.eval(&i.cond.rhs, env)?;
                self.backend.cost(CostEvent::Cmp, 1);
                self.backend.cost(CostEvent::Branch, 1);
                let taken = match (l, r) {
                    (Value::I(a), Value::I(b)) => cmp_holds(i.cond.op, a as f64, b as f64),
                    (a, b) => cmp_holds(i.cond.op, a.as_f64(), b.as_f64()),
                };
                if taken {
                    self.exec_block(&i.then_body, env)
                } else {
                    self.exec_block(&i.else_body, env)
                }
            }
            Stmt::Call(c) => self.exec_call(c, env),
        }
    }

    /// Tries to run `l` through its compiled [`fast::FastBody`]; returns
    /// `true` when the loop has fully executed (with identical values,
    /// cost totals and load/store order as the slow path would produce).
    fn fast_loop(&mut self, l: &ForLoop, lo: i64, hi: i64, env: &mut [i64]) -> bool {
        if !self.enable_fast {
            return false;
        }
        let key = l as *const ForLoop as usize;
        if !self.fast_loops.contains_key(&key) {
            let compiled = fast::FastBody::compile(self.prog, l);
            self.fast_loops.insert(key, compiled);
        }
        let Interp { fast_loops, backend, .. } = self;
        match fast_loops.get(&key).and_then(|o| o.as_ref()) {
            Some(body) => body.run(l, lo, hi, env, *backend),
            None => false,
        }
    }

    fn exec_call(&mut self, c: &CallStmt, env: &mut Vec<i64>) -> Result<(), InterpError> {
        let mut resolved = Vec::with_capacity(c.args.len());
        for a in &c.args {
            resolved.push(match a {
                CallArg::Value(e) => ResolvedArg::Num(self.eval(e, env)?),
                CallArg::Array(id) => ResolvedArg::Array(*id),
            });
        }
        self.backend.cost(CostEvent::CallOverhead, 1);
        self.backend.call(self.prog, &c.callee, &resolved)
    }

    fn flat_index(&mut self, a: &Access, env: &mut Vec<i64>) -> Result<usize, InterpError> {
        let decl = self.prog.array(a.array);
        if a.idx.len() != decl.dims.len() {
            return Err(InterpError::TypeError(format!(
                "{} indexed with {} subscripts, declared with {}",
                decl.name,
                a.idx.len(),
                decl.dims.len()
            )));
        }
        let mut flat: i64 = 0;
        for (d, e) in a.idx.iter().enumerate() {
            let v = self.eval(e, env)?.as_index()?;
            if v < 0 || v as usize >= decl.dims[d] {
                return Err(InterpError::OutOfBounds {
                    array: decl.name.clone(),
                    flat: v,
                    len: decl.dims[d],
                });
            }
            flat = flat * decl.dims[d] as i64 + v;
            // One multiply-accumulate of address arithmetic per dim.
            self.backend.cost(CostEvent::IntAlu, 1);
        }
        Ok(flat as usize)
    }

    fn eval(&mut self, e: &Expr, env: &mut Vec<i64>) -> Result<Value, InterpError> {
        match e {
            Expr::Int(v) => Ok(Value::I(*v)),
            Expr::Float(v) => Ok(Value::F(*v)),
            Expr::Var(v) => Ok(Value::I(env[v.0])),
            Expr::Load(a) => {
                let flat = self.flat_index(a, env)?;
                self.backend.cost(CostEvent::Load, 1);
                Ok(Value::F(self.backend.load(a.array, flat) as f64))
            }
            Expr::Unary(UnOp::Neg, e) => {
                let v = self.eval(e, env)?;
                Ok(match v {
                    Value::I(v) => {
                        self.backend.cost(CostEvent::IntAlu, 1);
                        Value::I(-v)
                    }
                    Value::F(v) => {
                        self.backend.cost(CostEvent::FpAdd, 1);
                        Value::F(-v)
                    }
                })
            }
            Expr::Bin(op, l, r) => {
                let l = self.eval(l, env)?;
                let r = self.eval(r, env)?;
                self.apply_bin(*op, l, r)
            }
        }
    }

    fn apply_bin(&mut self, op: BinOp, l: Value, r: Value) -> Result<Value, InterpError> {
        if let (Value::I(a), Value::I(b)) = (l, r) {
            let (ev, v) = match op {
                BinOp::Add => (CostEvent::IntAlu, a + b),
                BinOp::Sub => (CostEvent::IntAlu, a - b),
                BinOp::Mul => (CostEvent::IntMul, a * b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(InterpError::TypeError("integer division by zero".into()));
                    }
                    (CostEvent::IntAlu, a / b)
                }
                BinOp::Min => (CostEvent::IntAlu, a.min(b)),
                BinOp::Max => (CostEvent::IntAlu, a.max(b)),
            };
            self.backend.cost(ev, 1);
            return Ok(Value::I(v));
        }
        let (a, b) = (l.as_f64(), r.as_f64());
        // Kernels compute in f32; round intermediates to match hardware.
        let (ev, v) = match op {
            BinOp::Add => (CostEvent::FpAdd, (a as f32 + b as f32) as f64),
            BinOp::Sub => (CostEvent::FpAdd, (a as f32 - b as f32) as f64),
            BinOp::Mul => (CostEvent::FpMul, (a as f32 * b as f32) as f64),
            BinOp::Div => (CostEvent::FpDiv, (a as f32 / b as f32) as f64),
            BinOp::Min => (CostEvent::FpAdd, a.min(b)),
            BinOp::Max => (CostEvent::FpAdd, a.max(b)),
        };
        self.backend.cost(ev, 1);
        Ok(Value::F(v))
    }
}

fn cmp_holds(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

pub mod calls;
mod fast;
pub mod pure;

pub use pure::PureBackend;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::VarId;

    fn simple_program() -> Program {
        // for i in 0..4: A[i] = i * 2.0
        let mut p = Program::new("t");
        let a = p.add_array("A", vec![4]);
        let i = p.fresh_var("i");
        p.body = vec![Stmt::for_loop(
            i,
            Expr::Int(0),
            Expr::Int(4),
            1,
            vec![Stmt::assign(
                Access { array: a, idx: vec![Expr::Var(i)] },
                Expr::mul(Expr::Var(i), Expr::Float(2.0)),
            )],
        )];
        p
    }

    #[test]
    fn pure_run_computes_values() {
        let p = simple_program();
        let mut b = PureBackend::for_program(&p);
        run(&p, &mut b).expect("runs");
        assert_eq!(b.array(ArrayId(0)), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn cost_events_are_emitted() {
        #[derive(Default)]
        struct Counter {
            arrays: Vec<Vec<f32>>,
            loads: u64,
            stores: u64,
            branches: u64,
        }
        impl Backend for Counter {
            fn load(&mut self, a: ArrayId, flat: usize) -> f32 {
                self.arrays[a.0][flat]
            }
            fn store(&mut self, a: ArrayId, flat: usize, v: f32) {
                self.arrays[a.0][flat] = v;
            }
            fn cost(&mut self, ev: CostEvent, n: u64) {
                match ev {
                    CostEvent::Load => self.loads += n,
                    CostEvent::Store => self.stores += n,
                    CostEvent::Branch => self.branches += n,
                    _ => {}
                }
            }
            fn call(&mut self, _: &Program, c: &str, _: &[ResolvedArg]) -> Result<(), InterpError> {
                Err(InterpError::UnknownCall(c.into()))
            }
        }
        let p = simple_program();
        let mut b = Counter { arrays: vec![vec![0.0; 4]], ..Counter::default() };
        run(&p, &mut b).expect("runs");
        assert_eq!(b.stores, 4);
        assert_eq!(b.loads, 0);
        assert_eq!(b.branches, 5); // 4 iterations + exit check
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut p = Program::new("t");
        let a = p.add_array("A", vec![2]);
        p.body = vec![Stmt::assign(Access { array: a, idx: vec![Expr::Int(5)] }, Expr::Float(0.0))];
        let mut b = PureBackend::for_program(&p);
        let err = run(&p, &mut b).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { flat: 5, .. }));
    }

    #[test]
    fn float_as_index_is_type_error() {
        let mut p = Program::new("t");
        let a = p.add_array("A", vec![2]);
        p.body =
            vec![Stmt::assign(Access { array: a, idx: vec![Expr::Float(1.5)] }, Expr::Float(0.0))];
        let mut b = PureBackend::for_program(&p);
        assert!(matches!(run(&p, &mut b), Err(InterpError::TypeError(_))));
    }

    #[test]
    fn min_max_and_if_work() {
        // A[0] = min(3, 5); if (1 < 2) A[1] = max(3.0, 4.0) else A[1] = 0
        let mut p = Program::new("t");
        let a = p.add_array("A", vec![2]);
        p.body = vec![
            Stmt::assign(
                Access { array: a, idx: vec![Expr::Int(0)] },
                Expr::min(Expr::Int(3), Expr::Int(5)),
            ),
            Stmt::If(crate::stmt::IfStmt {
                cond: crate::stmt::Cond { op: CmpOp::Lt, lhs: Expr::Int(1), rhs: Expr::Int(2) },
                then_body: vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Int(1)] },
                    Expr::max(Expr::Float(3.0), Expr::Float(4.0)),
                )],
                else_body: vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Int(1)] },
                    Expr::Float(0.0),
                )],
            }),
        ];
        let mut b = PureBackend::for_program(&p);
        run(&p, &mut b).expect("runs");
        assert_eq!(b.array(a), &[3.0, 4.0]);
    }

    #[test]
    fn nested_loop_bounds_reference_outer_vars() {
        // for i in 0..3: for j in i..3: A[i][j] = 1
        let mut p = Program::new("t");
        let a = p.add_array("A", vec![3, 3]);
        let i = p.fresh_var("i");
        let j = p.fresh_var("j");
        p.body = vec![Stmt::for_loop(
            i,
            Expr::Int(0),
            Expr::Int(3),
            1,
            vec![Stmt::for_loop(
                j,
                Expr::Var(i),
                Expr::Int(3),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Var(i), Expr::Var(j)] },
                    Expr::Float(1.0),
                )],
            )],
        )];
        let mut b = PureBackend::for_program(&p);
        run(&p, &mut b).expect("runs");
        let sum: f32 = b.array(a).iter().sum();
        assert_eq!(sum, 6.0); // upper triangle incl. diagonal
    }

    #[test]
    fn var_id_display() {
        assert_eq!(VarId(3).to_string(), "%3");
        assert_eq!(ArrayId(1).to_string(), "@1");
    }
}
