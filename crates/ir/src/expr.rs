//! Expressions of the loop IR.

use crate::types::{ArrayId, VarId};

/// Binary operators. `Min`/`Max` arise from tiling (partial tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float or exact integer).
    Div,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

/// An array (or scalar) access with one index expression per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Target array.
    pub array: ArrayId,
    /// Index expressions (empty for scalars).
    pub idx: Vec<Expr>,
}

impl Access {
    /// A scalar access.
    pub fn scalar(array: ArrayId) -> Self {
        Access { array, idx: Vec::new() }
    }
}

/// An IR expression. Loop variables are integers; array elements are f32
/// (evaluated in f64 internally); literal types follow the constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Loop-variable read.
    Var(VarId),
    /// Array element read.
    Load(Access),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder DSL, not arithmetic on Expr values
impl Expr {
    /// `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    /// `lhs / rhs`.
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs))
    }

    /// `min(lhs, rhs)`.
    pub fn min(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(lhs), Box::new(rhs))
    }

    /// `max(lhs, rhs)`.
    pub fn max(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(lhs), Box::new(rhs))
    }

    /// `-e`.
    pub fn neg(e: Expr) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(e))
    }

    /// A load of `array[idx...]`.
    pub fn load(array: ArrayId, idx: Vec<Expr>) -> Expr {
        Expr::Load(Access { array, idx })
    }

    /// Visits every access in the expression tree.
    pub fn visit_accesses<'a>(&'a self, f: &mut impl FnMut(&'a Access)) {
        match self {
            Expr::Load(a) => {
                f(a);
                for e in &a.idx {
                    e.visit_accesses(f);
                }
            }
            Expr::Unary(_, e) => e.visit_accesses(f),
            Expr::Bin(_, l, r) => {
                l.visit_accesses(f);
                r.visit_accesses(f);
            }
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        }
    }

    /// Whether the expression mentions the given loop variable.
    pub fn uses_var(&self, v: VarId) -> bool {
        match self {
            Expr::Var(x) => *x == v,
            Expr::Int(_) | Expr::Float(_) => false,
            Expr::Load(a) => a.idx.iter().any(|e| e.uses_var(v)),
            Expr::Unary(_, e) => e.uses_var(v),
            Expr::Bin(_, l, r) => l.uses_var(v) || r.uses_var(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::add(Expr::Int(1), Expr::mul(Expr::Var(VarId(0)), Expr::Int(2)));
        assert!(matches!(e, Expr::Bin(BinOp::Add, _, _)));
        assert!(e.uses_var(VarId(0)));
        assert!(!e.uses_var(VarId(1)));
    }

    #[test]
    fn visit_accesses_finds_nested_loads() {
        let a0 = ArrayId(0);
        let a1 = ArrayId(1);
        // A[B[0]] + 1
        let e =
            Expr::add(Expr::load(a0, vec![Expr::load(a1, vec![Expr::Int(0)])]), Expr::Float(1.0));
        let mut seen = Vec::new();
        e.visit_accesses(&mut |a| seen.push(a.array));
        assert_eq!(seen, vec![a0, a1]);
    }

    #[test]
    fn scalar_access_has_no_indices() {
        let a = Access::scalar(ArrayId(3));
        assert!(a.idx.is_empty());
    }
}
