//! Differential properties for the interpreter's affine fast path.
//!
//! `interp::run` (fast path enabled) and `interp::run_reference` (plain
//! tree-walker) must be observationally identical on every program: same
//! array contents bit for bit, same cost-event totals, same ordered
//! load/store sequence, same error. The generator covers the shapes the
//! fast path accelerates (axpy, strided, triangular, GEMM, loop-carried
//! recurrences, reversed subscripts) and the shapes it must decline
//! (non-affine subscripts, integer division, runtime out-of-bounds).

use proptest::prelude::*;
use tdo_ir::interp::{self, Backend, CostEvent, InterpError, ResolvedArg};
use tdo_ir::{Access, ArrayId, Expr, Program, Stmt};

/// Records everything a backend can observe.
#[derive(Default, Clone, PartialEq, Debug)]
struct Recorder {
    arrays: Vec<Vec<f32>>,
    /// (event discriminant, count) totals.
    costs: std::collections::BTreeMap<String, u64>,
    /// Ordered data-access log: (is_store, array, flat, value bits).
    accesses: Vec<(bool, usize, usize, u32)>,
}

impl Recorder {
    fn for_program(p: &Program) -> Self {
        let arrays = (0..p.arrays.len())
            .map(|i| {
                let len: usize = p.array(ArrayId(i)).dims.iter().product();
                // Deterministic non-trivial fill so loads matter.
                (0..len.max(1)).map(|j| (j % 13) as f32 - 6.0).collect()
            })
            .collect();
        Recorder { arrays, ..Recorder::default() }
    }
}

impl Backend for Recorder {
    fn load(&mut self, a: ArrayId, flat: usize) -> f32 {
        let v = self.arrays[a.0][flat];
        self.accesses.push((false, a.0, flat, v.to_bits()));
        v
    }
    fn store(&mut self, a: ArrayId, flat: usize, v: f32) {
        self.arrays[a.0][flat] = v;
        self.accesses.push((true, a.0, flat, v.to_bits()));
    }
    fn cost(&mut self, ev: CostEvent, n: u64) {
        *self.costs.entry(format!("{ev:?}")).or_insert(0) += n;
    }
    fn call(&mut self, _: &Program, c: &str, _: &[ResolvedArg]) -> Result<(), InterpError> {
        Err(InterpError::UnknownCall(c.into()))
    }
}

/// Builds one of the generator's program shapes over problem size `n`
/// and stride `step`.
fn build_program(shape: usize, n: usize, step: i64) -> Program {
    let mut p = Program::new("fast-loop-case");
    let ni = n as i64;
    match shape {
        // axpy: Y[i] = Y[i] + 2.5 * X[i]
        0 => {
            let x = p.add_array("X", vec![n]);
            let y = p.add_array("Y", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: y, idx: vec![Expr::Var(i)] },
                    Expr::add(
                        Expr::load(y, vec![Expr::Var(i)]),
                        Expr::mul(Expr::Float(2.5), Expr::load(x, vec![Expr::Var(i)])),
                    ),
                )],
            )];
        }
        // strided store with affine offset: A[i] = X[i] * 2.0, step > 1
        1 => {
            let x = p.add_array("X", vec![n]);
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                step.max(1),
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Var(i)] },
                    Expr::mul(Expr::load(x, vec![Expr::Var(i)]), Expr::Float(2.0)),
                )],
            )];
        }
        // triangular nest: for i, for j in i..n: A[i][j] = X[j] + 1.0
        2 => {
            let x = p.add_array("X", vec![n]);
            let a = p.add_array("A", vec![n, n]);
            let i = p.fresh_var("i");
            let j = p.fresh_var("j");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::for_loop(
                    j,
                    Expr::Var(i),
                    Expr::Int(ni),
                    1,
                    vec![Stmt::assign(
                        Access { array: a, idx: vec![Expr::Var(i), Expr::Var(j)] },
                        Expr::add(Expr::load(x, vec![Expr::Var(j)]), Expr::Float(1.0)),
                    )],
                )],
            )];
        }
        // GEMM inner product: C[i][j] += A[i][k] * B[k][j]
        3 => {
            let a = p.add_array("A", vec![n, n]);
            let b = p.add_array("B", vec![n, n]);
            let c = p.add_array("C", vec![n, n]);
            let i = p.fresh_var("i");
            let j = p.fresh_var("j");
            let k = p.fresh_var("k");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::for_loop(
                    j,
                    Expr::Int(0),
                    Expr::Int(ni),
                    1,
                    vec![Stmt::for_loop(
                        k,
                        Expr::Int(0),
                        Expr::Int(ni),
                        1,
                        vec![Stmt::assign(
                            Access { array: c, idx: vec![Expr::Var(i), Expr::Var(j)] },
                            Expr::add(
                                Expr::load(c, vec![Expr::Var(i), Expr::Var(j)]),
                                Expr::mul(
                                    Expr::load(a, vec![Expr::Var(i), Expr::Var(k)]),
                                    Expr::load(b, vec![Expr::Var(k), Expr::Var(j)]),
                                ),
                            ),
                        )],
                    )],
                )],
            )];
        }
        // reversed subscript (negative inner coefficient): A[n-1-i] = X[i]
        4 => {
            let x = p.add_array("X", vec![n]);
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::sub(Expr::Int(ni - 1), Expr::Var(i))] },
                    Expr::load(x, vec![Expr::Var(i)]),
                )],
            )];
        }
        // loop-carried recurrence: A[i] = A[i-1] + X[i], i in 1..n
        5 => {
            let x = p.add_array("X", vec![n]);
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(1),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Var(i)] },
                    Expr::add(
                        Expr::load(a, vec![Expr::sub(Expr::Var(i), Expr::Int(1))]),
                        Expr::load(x, vec![Expr::Var(i)]),
                    ),
                )],
            )];
        }
        // non-affine subscript (declined): A[min(i, n-1)] = 1.0
        6 => {
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::min(Expr::Var(i), Expr::Int(ni - 1))] },
                    Expr::Float(1.0),
                )],
            )];
        }
        // integer division in the value (declined): A[i] = i / 2
        7 => {
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::Var(i)] },
                    Expr::div(Expr::Var(i), Expr::Int(2)),
                )],
            )];
        }
        // runtime out-of-bounds on the last iteration: A[i+1] = 0.0
        _ => {
            let a = p.add_array("A", vec![n]);
            let i = p.fresh_var("i");
            p.body = vec![Stmt::for_loop(
                i,
                Expr::Int(0),
                Expr::Int(ni),
                1,
                vec![Stmt::assign(
                    Access { array: a, idx: vec![Expr::add(Expr::Var(i), Expr::Int(1))] },
                    Expr::Float(0.0),
                )],
            )];
        }
    }
    p
}

/// A [`Recorder`] that opts into the batched run path
/// ([`Backend::prefers_bulk_runs`]) while keeping the default
/// `load_run`/`store_run` scalar delegation, so every access still lands
/// in the log.
#[derive(Default, Clone)]
struct BulkRecorder(Recorder);

impl Backend for BulkRecorder {
    fn load(&mut self, a: ArrayId, flat: usize) -> f32 {
        self.0.load(a, flat)
    }
    fn store(&mut self, a: ArrayId, flat: usize, v: f32) {
        self.0.store(a, flat, v)
    }
    fn cost(&mut self, ev: CostEvent, n: u64) {
        self.0.cost(ev, n)
    }
    fn call(&mut self, p: &Program, c: &str, a: &[ResolvedArg]) -> Result<(), InterpError> {
        self.0.call(p, c, a)
    }
    fn prefers_bulk_runs(&self) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config { cases: 64 })]
    #[test]
    fn fast_path_is_observationally_identical(
        shape in 0usize..9,
        n in 1usize..10,
        step in 1i64..4,
    ) {
        let p = build_program(shape, n, step);
        let mut fast = Recorder::for_program(&p);
        let mut slow = fast.clone();
        let fr = interp::run(&p, &mut fast);
        let sr = interp::run_reference(&p, &mut slow);
        prop_assert_eq!(&fr, &sr);
        prop_assert_eq!(&fast.arrays, &slow.arrays);
        prop_assert_eq!(&fast.costs, &slow.costs);
        prop_assert_eq!(&fast.accesses, &slow.accesses);
    }

    /// A run-capable backend accepts access *reordering* at run
    /// granularity (and, for a register-carried reduction, loads of the
    /// target cell that observe the pre-run value) — but array contents,
    /// cost totals, per-location access counts, and the per-location
    /// store-value sequences must all still match the reference
    /// tree-walker bit for bit.
    #[test]
    fn batched_path_preserves_scalar_results(
        shape in 0usize..9,
        n in 1usize..10,
        step in 1i64..4,
    ) {
        let p = build_program(shape, n, step);
        let mut fast = BulkRecorder(Recorder::for_program(&p));
        let mut slow = fast.0.clone();
        let fr = interp::run(&p, &mut fast);
        let sr = interp::run_reference(&p, &mut slow);
        prop_assert_eq!(&fr, &sr);
        prop_assert_eq!(&fast.0.arrays, &slow.arrays);
        prop_assert_eq!(&fast.0.costs, &slow.costs);
        // Per-location traffic: same number of loads and stores of each
        // cell, and stores write the same value sequence per cell.
        let census = |log: &[(bool, usize, usize, u32)]| {
            let mut counts = std::collections::BTreeMap::new();
            let mut stored = std::collections::BTreeMap::new();
            for &(is_store, a, flat, bits) in log {
                *counts.entry((is_store, a, flat)).or_insert(0u64) += 1;
                if is_store {
                    stored.entry((a, flat)).or_insert_with(Vec::new).push(bits);
                }
            }
            (counts, stored)
        };
        prop_assert_eq!(census(&fast.0.accesses), census(&slow.accesses));
    }
}

/// The declined shapes still run (via the slow path inside `run`).
#[test]
fn declined_shapes_fall_back() {
    for shape in [6usize, 7] {
        let p = build_program(shape, 5, 1);
        let mut b = Recorder::for_program(&p);
        interp::run(&p, &mut b).expect("fallback executes");
    }
}

/// The out-of-bounds shape errors identically under both executors, with
/// the same partial stores already applied.
#[test]
fn runtime_oob_matches_reference() {
    let p = build_program(8, 4, 1);
    let mut fast = Recorder::for_program(&p);
    let mut slow = fast.clone();
    let fr = interp::run(&p, &mut fast).unwrap_err();
    let sr = interp::run_reference(&p, &mut slow).unwrap_err();
    assert_eq!(fr, sr);
    assert!(matches!(fr, InterpError::OutOfBounds { flat: 4, .. }));
    assert_eq!(fast.arrays, slow.arrays);
    assert_eq!(fast.accesses, slow.accesses);
}
