//! Schedule-tree to loop-IR code generation.
//!
//! "The modified tree is then passed back to Polly which lowers it back to
//! an imperative AST and then further down to LLVM-IR" (Section III-A).
//! Here the tree lowers back to `tdo-ir` statements: bands become counted
//! loops, leaves re-emit their statements, extension nodes emit the
//! injected runtime calls verbatim.

use crate::scop::Scop;
use crate::tree::ScheduleTree;
use tdo_ir::{Program, Stmt};

/// Generates the statement list realizing `tree` over the SCoP's
/// statement table.
pub fn generate(scop: &Scop, tree: &ScheduleTree) -> Vec<Stmt> {
    match tree {
        ScheduleTree::Band { dim, child } => {
            vec![Stmt::for_loop(
                dim.var,
                dim.lo.clone(),
                dim.hi.clone(),
                dim.step,
                generate(scop, child),
            )]
        }
        ScheduleTree::Sequence { children } => {
            children.iter().flat_map(|c| generate(scop, c)).collect()
        }
        ScheduleTree::Leaf { stmt } => vec![Stmt::Assign(scop.stmts[*stmt].assign.clone())],
        ScheduleTree::Mark { child, .. } => generate(scop, child),
        ScheduleTree::Extension { stmts } => stmts.clone(),
    }
}

/// Replaces a program's body with the code generated from `tree`,
/// returning the new program (the original is untouched).
pub fn rebuild_program(prog: &Program, scop: &Scop, tree: &ScheduleTree) -> Program {
    let mut out = prog.clone();
    out.body = generate(scop, tree);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scop::extract;
    use tdo_ir::interp::{run, PureBackend};
    use tdo_ir::printer::print_program;
    use tdo_lang::compile;

    #[test]
    fn roundtrip_reproduces_source_semantics() {
        let src = r#"
            const int N = 5;
            float A[N][N]; float x[N]; float y[N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  y[i] += A[i][j] * x[j];
            }
        "#;
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let rebuilt = rebuild_program(&prog, &scop, &scop.tree);
        tdo_ir::verify::verify(&rebuilt).expect("well-formed");

        let init = |be: &mut PureBackend| {
            be.set_array(
                prog.array_by_name("A").unwrap(),
                &(0..25).map(|v| v as f32).collect::<Vec<_>>(),
            );
            be.set_array(prog.array_by_name("x").unwrap(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        };
        let mut b1 = PureBackend::for_program(&prog);
        init(&mut b1);
        run(&prog, &mut b1).expect("runs");
        let mut b2 = PureBackend::for_program(&rebuilt);
        init(&mut b2);
        run(&rebuilt, &mut b2).expect("runs");
        assert_eq!(b1.into_arrays(), b2.into_arrays());
    }

    #[test]
    fn extension_nodes_emit_verbatim() {
        let src = "float A[4]; void kernel() { for (int i = 0; i < 4; i++) A[i] = 1.0; }";
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let call = Stmt::Call(tdo_ir::CallStmt {
            callee: "polly_cimInit".into(),
            args: vec![tdo_ir::CallArg::Value(tdo_ir::Expr::Int(0))],
        });
        let tree = ScheduleTree::Sequence {
            children: vec![ScheduleTree::Extension { stmts: vec![call] }, scop.tree.clone()],
        };
        let rebuilt = rebuild_program(&prog, &scop, &tree);
        let text = print_program(&rebuilt);
        assert!(text.contains("polly_cimInit(0);"));
        assert!(text.contains("for (int i = 0; i < 4; i++) {"));
    }
}
