//! Static control part (SCoP) detection.
//!
//! "At LLVM-IR level we rely on the polyhedral optimizer Polly to detect,
//! extract and model compute kernels" (Section III-A). A SCoP here is a
//! region of counted loops with affine bounds around assignments whose
//! accesses are all affine; `if`s, runtime calls and non-affine shapes
//! make extraction fail, in which case the pipeline leaves the program
//! untouched (exactly Polly's bail-out behaviour).

use crate::tree::{BandDim, ScheduleTree};
use std::fmt;
use tdo_ir::affine::{AffineAccess, AffineExpr};
use tdo_ir::{Assign, Program, Stmt, VarId};

/// One statement of a SCoP with its iteration domain and access relations.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopStmt {
    /// Statement id (index in [`Scop::stmts`], referenced by tree leaves).
    pub id: usize,
    /// Enclosing loop dimensions, outermost first.
    pub domain: Vec<LoopDim>,
    /// The assignment itself.
    pub assign: Assign,
    /// The write access.
    pub write: AffineAccess,
    /// All read accesses (including scalars).
    pub reads: Vec<AffineAccess>,
}

/// An affine loop dimension `var in [lb, ub) step`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDim {
    /// Induction variable.
    pub var: VarId,
    /// Inclusive affine lower bound.
    pub lb: AffineExpr,
    /// Exclusive affine upper bound.
    pub ub: AffineExpr,
    /// Positive step.
    pub step: i64,
}

impl LoopDim {
    /// Converts to a schedule-tree band dimension.
    pub fn to_band_dim(&self) -> BandDim {
        BandDim { var: self.var, lo: self.lb.to_expr(), hi: self.ub.to_expr(), step: self.step }
    }
}

/// A detected SCoP: statements plus the initial schedule tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Scop {
    /// Statement table.
    pub stmts: Vec<ScopStmt>,
    /// Initial schedule (mirrors the source loop structure).
    pub tree: ScheduleTree,
}

/// Why extraction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopError {
    /// A loop bound was not affine.
    NonAffineBound(String),
    /// An access subscript was not affine.
    NonAffineAccess(String),
    /// Data-dependent control flow.
    HasIf,
    /// The region already contains runtime calls.
    HasCall,
}

impl fmt::Display for ScopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopError::NonAffineBound(s) => write!(f, "non-affine loop bound: {s}"),
            ScopError::NonAffineAccess(s) => write!(f, "non-affine access: {s}"),
            ScopError::HasIf => write!(f, "data-dependent control flow in region"),
            ScopError::HasCall => write!(f, "region contains calls"),
        }
    }
}

impl std::error::Error for ScopError {}

/// Extracts the SCoP covering the whole program body.
///
/// # Errors
///
/// [`ScopError`] if any part of the body is outside the affine model.
pub fn extract(prog: &Program) -> Result<Scop, ScopError> {
    let mut scop = Scop { stmts: Vec::new(), tree: ScheduleTree::Sequence { children: vec![] } };
    let mut domain = Vec::new();
    scop.tree = build_block(prog, &prog.body, &mut domain, &mut scop.stmts)?;
    Ok(scop)
}

fn build_block(
    prog: &Program,
    stmts: &[Stmt],
    domain: &mut Vec<LoopDim>,
    table: &mut Vec<ScopStmt>,
) -> Result<ScheduleTree, ScopError> {
    let mut children = Vec::new();
    for s in stmts {
        children.push(build_stmt(prog, s, domain, table)?);
    }
    if children.len() == 1 {
        Ok(children.pop().expect("len 1"))
    } else {
        Ok(ScheduleTree::Sequence { children })
    }
}

fn build_stmt(
    prog: &Program,
    s: &Stmt,
    domain: &mut Vec<LoopDim>,
    table: &mut Vec<ScopStmt>,
) -> Result<ScheduleTree, ScopError> {
    match s {
        Stmt::For(l) => {
            let lb = AffineExpr::from_expr(&l.lo).ok_or_else(|| {
                ScopError::NonAffineBound(format!("lower bound of {}", prog.var_name(l.var)))
            })?;
            let ub = AffineExpr::from_expr(&l.hi).ok_or_else(|| {
                ScopError::NonAffineBound(format!("upper bound of {}", prog.var_name(l.var)))
            })?;
            domain.push(LoopDim { var: l.var, lb, ub, step: l.step });
            let child = build_block(prog, &l.body, domain, table)?;
            let dim = domain.pop().expect("pushed above");
            Ok(ScheduleTree::band(dim.to_band_dim(), child))
        }
        Stmt::Assign(a) => {
            let write = AffineAccess::from_access(&a.target).ok_or_else(|| {
                ScopError::NonAffineAccess(prog.array(a.target.array).name.clone())
            })?;
            let mut reads = Vec::new();
            let mut bad: Option<ScopError> = None;
            a.value.visit_accesses(&mut |acc| match AffineAccess::from_access(acc) {
                Some(aa) => reads.push(aa),
                None => {
                    bad.get_or_insert(ScopError::NonAffineAccess(
                        prog.array(acc.array).name.clone(),
                    ));
                }
            });
            if let Some(e) = bad {
                return Err(e);
            }
            let id = table.len();
            table.push(ScopStmt { id, domain: domain.clone(), assign: a.clone(), write, reads });
            Ok(ScheduleTree::Leaf { stmt: id })
        }
        Stmt::If(_) => Err(ScopError::HasIf),
        Stmt::Call(_) => Err(ScopError::HasCall),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdo_lang::compile;

    const GEMM: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N];
        float alpha = 1.0; float beta = 1.0;
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++) {
              C[i][j] = beta * C[i][j];
              for (int k = 0; k < N; k++)
                C[i][j] += alpha * A[i][k] * B[k][j];
            }
        }
    "#;

    #[test]
    fn gemm_extracts_two_statements() {
        let prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        assert_eq!(scop.stmts.len(), 2);
        // Init statement: 2-deep domain; update: 3-deep.
        assert_eq!(scop.stmts[0].domain.len(), 2);
        assert_eq!(scop.stmts[1].domain.len(), 3);
        // Update reads C, alpha, A, B.
        assert_eq!(scop.stmts[1].reads.len(), 4);
        assert_eq!(scop.tree.leaf_stmts(), vec![0, 1]);
    }

    #[test]
    fn domain_bounds_recorded() {
        let prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let d = &scop.stmts[1].domain[2];
        assert_eq!(d.lb, AffineExpr::constant(0));
        assert_eq!(d.ub, AffineExpr::constant(8));
        assert_eq!(d.step, 1);
    }

    #[test]
    fn triangular_domains_are_affine() {
        let src = r#"
            float A[8][8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = i; j < 8; j++)
                  A[i][j] = 1.0;
            }
        "#;
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let d = &scop.stmts[0].domain[1];
        assert_eq!(d.lb.as_single_var(), Some(scop.stmts[0].domain[0].var));
    }

    #[test]
    fn if_statements_bail_out() {
        let src = r#"
            float A[8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                if (i < 4) A[i] = 1.0;
            }
        "#;
        let prog = compile(src).expect("compiles");
        assert_eq!(extract(&prog), Err(ScopError::HasIf));
    }

    #[test]
    fn non_affine_subscript_bails_out() {
        let src = r#"
            float A[8][8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                  A[i * j][0] = 1.0;
            }
        "#;
        let prog = compile(src).expect("compiles");
        assert!(matches!(extract(&prog), Err(ScopError::NonAffineAccess(_))));
    }

    #[test]
    fn initial_tree_mirrors_source_nesting() {
        let prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        // i and j bands, then a sequence of {init leaf, k band over update}.
        let (dims, inner) = scop.tree.band_chain();
        assert_eq!(dims.len(), 2);
        let ScheduleTree::Sequence { children } = inner else { panic!("expected sequence") };
        assert_eq!(children.len(), 2);
        assert!(matches!(children[0], ScheduleTree::Leaf { stmt: 0 }));
        assert_eq!(children[1].band_depth(), 1);
    }
}
