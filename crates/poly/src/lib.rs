//! # tdo-poly — polyhedral-style middle end
//!
//! The Polly substitute of the reproduction (Section III-A of the TDO-CIM
//! paper): [`scop`] detects static control parts and models statements
//! with affine domains and access relations; [`tree`] represents their
//! schedules as trees; [`transforms`] implements the paper's revisited
//! tiling (Listing 3) and fusion (Listing 2) plus interchange as tree
//! rewrites; [`deps`] provides the kernel-independence test those rewrites
//! rely on; [`codegen`] lowers schedules back to loop IR.
//!
//! ```
//! let src = r#"
//!     float A[8][8];
//!     void kernel() {
//!       for (int i = 0; i < 8; i++)
//!         for (int j = 0; j < 8; j++)
//!           A[i][j] = 1.0;
//!     }
//! "#;
//! let prog = tdo_lang::compile(src)?;
//! let scop = tdo_poly::scop::extract(&prog)?;
//! assert_eq!(scop.stmts.len(), 1);
//! assert_eq!(scop.tree.band_depth(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod deps;
pub mod scop;
pub mod transforms;
pub mod tree;

pub use scop::{LoopDim, Scop, ScopError, ScopStmt};
pub use tree::{BandDim, ScheduleTree};
