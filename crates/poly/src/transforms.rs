//! Schedule-tree transformations: tiling, interchange, fusion.
//!
//! Section III-B revisits tiling and fusion "in the light of this new CIM
//! computing paradigm trying to minimize write operations to crossbar to
//! enhance endurance": tiling + interchange make a stationary-operand tile
//! reusable across consecutive point-loop executions (Listing 3), and
//! fusion merges independent same-shape kernels so a batched runtime call
//! can keep shared inputs resident (Listing 2).

use crate::deps::kernels_independent;
use crate::scop::Scop;
use crate::tree::{BandDim, ScheduleTree};
use tdo_ir::affine::AffineExpr;
use tdo_ir::{Expr, Program, Stmt, VarId};

/// Tiles the outermost `sizes.len()` perfectly nested bands of `tree`.
///
/// The tile loops are emitted in `perm` order (a permutation of the band
/// indices — Listing 3 uses `[ii, kk, jj]` for a `[i, j, k]` GEMM nest so
/// the `A` tile selected by `(ii, kk)` is reused across the whole `jj`
/// tile row). Point loops are wrapped in a `"point"` mark. Returns `None`
/// if the nest is not deep enough, sizes are non-positive, or any tiled
/// bound is non-constant (partial-tile `min` bounds are still generated;
/// only the *band* extents must be constant for this simple tiler).
pub fn tile(
    prog: &mut Program,
    tree: &ScheduleTree,
    sizes: &[i64],
    perm: &[usize],
) -> Option<ScheduleTree> {
    let depth = sizes.len();
    if depth == 0 || perm.len() != depth || sizes.iter().any(|s| *s <= 0) {
        return None;
    }
    let mut sorted = perm.to_vec();
    sorted.sort_unstable();
    if sorted != (0..depth).collect::<Vec<_>>() {
        return None;
    }
    let (dims, inner) = tree.band_chain();
    if dims.len() < depth {
        return None;
    }
    let dims: Vec<BandDim> = dims.into_iter().cloned().collect();
    // Constant-bound check for the tiled dimensions.
    for d in &dims[..depth] {
        let lo = AffineExpr::from_expr(&d.lo)?;
        let hi = AffineExpr::from_expr(&d.hi)?;
        if !lo.is_constant() || !hi.is_constant() || d.step != 1 {
            return None;
        }
    }
    // Fresh tile variables, named after the point variables (i -> ii).
    let tile_vars: Vec<VarId> = (0..depth)
        .map(|l| {
            let base = prog.var_name(dims[l].var).to_string();
            prog.fresh_var(format!("{base}{base}"))
        })
        .collect();
    // Innermost part: remaining (untiled) bands over the original subtree.
    let mut body = inner.clone();
    for d in dims[depth..].iter().rev() {
        body = ScheduleTree::band(d.clone(), body);
    }
    // Point loops, innermost-last, wrapped in a mark.
    for l in (0..depth).rev() {
        let d = &dims[l];
        let point = BandDim {
            var: d.var,
            lo: Expr::Var(tile_vars[l]),
            hi: Expr::min(Expr::add(Expr::Var(tile_vars[l]), Expr::Int(sizes[l])), d.hi.clone()),
            step: 1,
        };
        body = ScheduleTree::band(point, body);
    }
    body = ScheduleTree::mark("point", body);
    // Tile loops in `perm` order (perm[0] is the outermost tile loop).
    for &l in perm.iter().rev() {
        let d = &dims[l];
        let tile_dim =
            BandDim { var: tile_vars[l], lo: d.lo.clone(), hi: d.hi.clone(), step: sizes[l] };
        body = ScheduleTree::band(tile_dim, body);
    }
    Some(ScheduleTree::mark("tiled", body))
}

/// Interchanges two levels of a perfect band nest. Returns `None` if the
/// chain is shallower than `max(a, b) + 1` or an interchanged bound
/// references the other variable (non-rectangular nests).
pub fn interchange(tree: &ScheduleTree, a: usize, b: usize) -> Option<ScheduleTree> {
    let (dims, inner) = tree.band_chain();
    let depth = dims.len();
    if a >= depth || b >= depth {
        return None;
    }
    let mut dims: Vec<BandDim> = dims.into_iter().cloned().collect();
    // Rectangularity: neither bound of the moved dims may use the other var.
    let uses = |d: &BandDim, v: VarId| d.lo.uses_var(v) || d.hi.uses_var(v);
    if uses(&dims[a], dims[b].var) || uses(&dims[b], dims[a].var) {
        return None;
    }
    dims.swap(a, b);
    let mut t = inner.clone();
    for d in dims.into_iter().rev() {
        t = ScheduleTree::band(d, t);
    }
    Some(t)
}

/// Classical loop fusion of two adjacent children of a sequence: both must
/// be band chains of identical shape over leaves, and the kernels must be
/// independent per the paper's rule. The second kernel's statements are
/// re-rooted onto the first kernel's induction variables (new statements
/// are appended to the SCoP). Returns the fused tree or `None`.
pub fn fuse_adjacent(scop: &mut Scop, seq: &ScheduleTree, at: usize) -> Option<ScheduleTree> {
    let ScheduleTree::Sequence { children } = seq else { return None };
    if at + 1 >= children.len() {
        return None;
    }
    let (dims_a, inner_a) = children[at].band_chain();
    let (dims_b, inner_b) = children[at + 1].band_chain();
    if dims_a.is_empty() || dims_a.len() != dims_b.len() {
        return None;
    }
    for (da, db) in dims_a.iter().zip(&dims_b) {
        if da.lo != db.lo || da.hi != db.hi || da.step != db.step {
            return None;
        }
    }
    let leaves_a = inner_a.leaf_stmts();
    let leaves_b = inner_b.leaf_stmts();
    if leaves_a.is_empty() || leaves_b.is_empty() {
        return None;
    }
    {
        let xs: Vec<&crate::scop::ScopStmt> = leaves_a.iter().map(|i| &scop.stmts[*i]).collect();
        let ys: Vec<&crate::scop::ScopStmt> = leaves_b.iter().map(|i| &scop.stmts[*i]).collect();
        if !kernels_independent(&xs, &ys) {
            return None;
        }
    }
    // Rename B's band variables to A's in B's statements.
    let var_map: Vec<(VarId, VarId)> =
        dims_b.iter().zip(&dims_a).map(|(db, da)| (db.var, da.var)).collect();
    let mut new_leaves = Vec::new();
    for id in &leaves_b {
        let mut stmt = scop.stmts[*id].clone();
        stmt.id = scop.stmts.len();
        rename_assign(&mut stmt.assign, &var_map);
        for dim in &mut stmt.domain {
            if let Some((_, to)) = var_map.iter().find(|(from, _)| *from == dim.var) {
                dim.var = *to;
            }
            dim.lb = rename_affine(&dim.lb, &var_map);
            dim.ub = rename_affine(&dim.ub, &var_map);
        }
        // Recompute affine accesses after renaming.
        stmt.write = tdo_ir::affine::AffineAccess::from_access(&stmt.assign.target)
            .expect("renaming preserves affinity");
        let mut reads = Vec::new();
        stmt.assign.value.visit_accesses(&mut |a| {
            reads.push(
                tdo_ir::affine::AffineAccess::from_access(a).expect("renaming preserves affinity"),
            );
        });
        stmt.reads = reads;
        new_leaves.push(ScheduleTree::Leaf { stmt: stmt.id });
        scop.stmts.push(stmt);
    }
    // Fused body: A's inner subtree followed by B's renamed leaves.
    let mut fused_children = match inner_a {
        ScheduleTree::Sequence { children } => children.clone(),
        other => vec![other.clone()],
    };
    fused_children.extend(new_leaves);
    let mut fused = ScheduleTree::Sequence { children: fused_children };
    for d in dims_a.into_iter().rev() {
        fused = ScheduleTree::band(d.clone(), fused);
    }
    let mut children = children.clone();
    children[at] = ScheduleTree::mark("fused", fused);
    children.remove(at + 1);
    if children.len() == 1 {
        Some(children.pop().expect("len 1"))
    } else {
        Some(ScheduleTree::Sequence { children })
    }
}

fn rename_affine(e: &AffineExpr, map: &[(VarId, VarId)]) -> AffineExpr {
    let mut out = AffineExpr::constant(e.constant);
    for (v, c) in &e.terms {
        let v = map.iter().find(|(f, _)| f == v).map(|(_, t)| *t).unwrap_or(*v);
        let entry = out.terms.entry(v).or_insert(0);
        *entry += c;
    }
    out
}

fn rename_assign(a: &mut tdo_ir::Assign, map: &[(VarId, VarId)]) {
    rename_expr_vars(&mut a.value, map);
    for e in &mut a.target.idx {
        rename_expr_vars(e, map);
    }
}

fn rename_expr_vars(e: &mut Expr, map: &[(VarId, VarId)]) {
    match e {
        Expr::Var(v) => {
            if let Some((_, t)) = map.iter().find(|(f, _)| f == v) {
                *v = *t;
            }
        }
        Expr::Load(a) => a.idx.iter_mut().for_each(|e| rename_expr_vars(e, map)),
        Expr::Unary(_, inner) => rename_expr_vars(inner, map),
        Expr::Bin(_, l, r) => {
            rename_expr_vars(l, map);
            rename_expr_vars(r, map);
        }
        Expr::Int(_) | Expr::Float(_) => {}
    }
}

/// Substitutes statements of `old` for `replacement` wherever `pred` holds
/// on a subtree — the generic rewrite used by the Loop Tactics passes to
/// swap matched kernels for extension nodes.
pub fn replace_subtree(
    tree: &ScheduleTree,
    pred: &impl Fn(&ScheduleTree) -> bool,
    replacement: &mut impl FnMut(&ScheduleTree) -> ScheduleTree,
) -> ScheduleTree {
    if pred(tree) {
        return replacement(tree);
    }
    match tree {
        ScheduleTree::Band { dim, child } => ScheduleTree::Band {
            dim: dim.clone(),
            child: Box::new(replace_subtree(child, pred, replacement)),
        },
        ScheduleTree::Mark { name, child } => ScheduleTree::Mark {
            name: name.clone(),
            child: Box::new(replace_subtree(child, pred, replacement)),
        },
        ScheduleTree::Sequence { children } => ScheduleTree::Sequence {
            children: children.iter().map(|c| replace_subtree(c, pred, replacement)).collect(),
        },
        ScheduleTree::Leaf { .. } | ScheduleTree::Extension { .. } => tree.clone(),
    }
}

/// Injects statements before a subtree matching `pred` (e.g. the
/// `polly_cimInit`/`polly_cimMalloc` prologue before the first offload).
pub fn prepend_extension(tree: &ScheduleTree, stmts: Vec<Stmt>) -> ScheduleTree {
    match tree {
        ScheduleTree::Sequence { children } => {
            let mut out = vec![ScheduleTree::Extension { stmts }];
            out.extend(children.iter().cloned());
            ScheduleTree::Sequence { children: out }
        }
        other => ScheduleTree::Sequence {
            children: vec![ScheduleTree::Extension { stmts }, other.clone()],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::generate;
    use crate::scop::extract;
    use tdo_ir::interp::{run, PureBackend};
    use tdo_lang::compile;

    const GEMM: &str = r#"
        const int N = 8;
        float A[N][N]; float B[N][N]; float C[N][N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
        }
    "#;

    fn run_to_arrays(prog: &tdo_ir::Program) -> Vec<Vec<f32>> {
        let mut be = PureBackend::for_program(prog);
        // Deterministic pseudo-random init for all arrays.
        for (i, d) in prog.arrays.iter().enumerate() {
            let data: Vec<f32> =
                (0..d.elem_count()).map(|j| ((i * 31 + j * 7) % 13) as f32 - 6.0).collect();
            be.set_array(tdo_ir::ArrayId(i), &data);
        }
        run(prog, &mut be).expect("runs");
        be.into_arrays()
    }

    #[test]
    fn tiling_preserves_semantics() {
        let mut prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let reference = run_to_arrays(&prog);
        let tiled = tile(&mut prog, &scop.tree, &[4, 4, 4], &[0, 2, 1]).expect("tiles");
        let mut tiled_prog = prog.clone();
        tiled_prog.body = generate(&scop, &tiled);
        tdo_ir::verify::verify(&tiled_prog).expect("well-formed");
        assert_eq!(run_to_arrays(&tiled_prog), reference);
    }

    #[test]
    fn tiling_handles_partial_tiles() {
        // 10 is not divisible by 4: min() bounds must kick in.
        let src = GEMM.replace("const int N = 8;", "const int N = 10;");
        let mut prog = compile(&src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let reference = run_to_arrays(&prog);
        let tiled = tile(&mut prog, &scop.tree, &[4, 4, 4], &[0, 1, 2]).expect("tiles");
        let mut tiled_prog = prog.clone();
        tiled_prog.body = generate(&scop, &tiled);
        assert_eq!(run_to_arrays(&tiled_prog), reference);
    }

    #[test]
    fn listing3_order_reuses_a_tile() {
        // Tile loops in [ii, kk, jj] order: the printed code must iterate
        // jj innermost among tile loops.
        let mut prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let tiled = tile(&mut prog, &scop.tree, &[4, 4, 4], &[0, 2, 1]).expect("tiles");
        let (dims, _) = tiled.band_chain();
        let names: Vec<&str> = dims.iter().map(|d| prog.var_name(d.var)).collect();
        assert_eq!(names[..3], ["ii", "kk", "jj"]);
        assert_eq!(names[3..], ["i", "j", "k"]);
    }

    #[test]
    fn tile_rejects_bad_inputs() {
        let mut prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        assert!(tile(&mut prog, &scop.tree, &[], &[]).is_none());
        assert!(tile(&mut prog, &scop.tree, &[4, 4], &[0, 0]).is_none());
        assert!(tile(&mut prog, &scop.tree, &[4, -1], &[0, 1]).is_none());
        assert!(tile(&mut prog, &scop.tree, &[4; 5], &[0, 1, 2, 3, 4]).is_none());
    }

    #[test]
    fn interchange_preserves_semantics_and_swaps() {
        let prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let reference = run_to_arrays(&prog);
        let swapped = interchange(&scop.tree, 0, 2).expect("interchange");
        let mut new_prog = prog.clone();
        new_prog.body = generate(&scop, &swapped);
        assert_eq!(run_to_arrays(&new_prog), reference);
        let (dims, _) = swapped.band_chain();
        let names: Vec<&str> = dims.iter().map(|d| prog.var_name(d.var)).collect();
        assert_eq!(names, ["k", "j", "i"]);
    }

    #[test]
    fn interchange_rejects_triangular() {
        let src = r#"
            float A[8][8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = i; j < 8; j++)
                  A[i][j] = 1.0;
            }
        "#;
        let prog = compile(src).expect("compiles");
        let scop = extract(&prog).expect("affine");
        assert!(interchange(&scop.tree, 0, 1).is_none());
    }

    const TWO_INDEPENDENT: &str = r#"
        const int N = 6;
        float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
        void kernel() {
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                C[i][j] += A[i][k] * B[k][j];
          for (int i = 0; i < N; i++)
            for (int j = 0; j < N; j++)
              for (int k = 0; k < N; k++)
                D[i][j] += A[i][k] * E[k][j];
        }
    "#;

    #[test]
    fn fusion_merges_independent_kernels() {
        let prog = compile(TWO_INDEPENDENT).expect("compiles");
        let mut scop = extract(&prog).expect("affine");
        let reference = run_to_arrays(&prog);
        let tree = scop.tree.clone();
        let fused = fuse_adjacent(&mut scop, &tree, 0).expect("fuses");
        let mut fused_prog = prog.clone();
        fused_prog.body = generate(&scop, &fused);
        tdo_ir::verify::verify(&fused_prog).expect("well-formed");
        assert_eq!(run_to_arrays(&fused_prog), reference);
        // One loop nest remains.
        let (dims, _) = fused.band_chain();
        assert_eq!(dims.len(), 3);
    }

    #[test]
    fn fusion_refuses_dependent_kernels() {
        let src = TWO_INDEPENDENT
            .replace("D[i][j] += A[i][k] * E[k][j];", "D[i][j] += C[i][k] * E[k][j];");
        let prog = compile(&src).expect("compiles");
        let mut scop = extract(&prog).expect("affine");
        let tree = scop.tree.clone();
        assert!(fuse_adjacent(&mut scop, &tree, 0).is_none());
    }

    #[test]
    fn fusion_refuses_mismatched_domains() {
        let src = TWO_INDEPENDENT.replace(
            "for (int i = 0; i < N; i++)\n            for (int j = 0; j < N; j++)\n              for (int k = 0; k < N; k++)\n                D[i][j] += A[i][k] * E[k][j];",
            "for (int i = 0; i < 3; i++)\n            for (int j = 0; j < N; j++)\n              for (int k = 0; k < N; k++)\n                D[i][j] += A[i][k] * E[k][j];",
        );
        let prog = compile(&src).expect("compiles");
        let mut scop = extract(&prog).expect("affine");
        let tree = scop.tree.clone();
        assert!(fuse_adjacent(&mut scop, &tree, 0).is_none());
    }

    #[test]
    fn replace_subtree_swaps_matching_nodes() {
        let prog = compile(GEMM).expect("compiles");
        let scop = extract(&prog).expect("affine");
        let replaced =
            replace_subtree(&scop.tree, &|t| matches!(t, ScheduleTree::Leaf { .. }), &mut |_| {
                ScheduleTree::Extension { stmts: vec![] }
            });
        assert_eq!(replaced.leaf_stmts(), Vec::<usize>::new());
    }
}
