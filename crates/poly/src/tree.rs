//! Schedule trees.
//!
//! "Internally Polly represents the schedule of each detected kernel as a
//! tree, which we refer to as schedule tree. [...] Loop optimizations and
//! device mapping are expressed as tree modifications and carried out by
//! Loop Tactics" (Section III-A, after Verdoolaege et al. \[21\]).
//!
//! Node kinds follow the isl vocabulary: bands (loop dimensions),
//! sequences, filters (implicit — one leaf per statement), marks, and
//! extension nodes used by the device-mapping rewrite to inject runtime
//! calls into the schedule.

use tdo_ir::{Expr, Stmt, VarId};

/// One band dimension: a loop with general expression bounds (tiling
/// introduces `min(...)` upper bounds for partial tiles).
#[derive(Debug, Clone, PartialEq)]
pub struct BandDim {
    /// Induction variable.
    pub var: VarId,
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Exclusive upper bound.
    pub hi: Expr,
    /// Positive step.
    pub step: i64,
}

/// A schedule tree.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleTree {
    /// A single loop dimension over a child schedule.
    Band {
        /// The dimension.
        dim: BandDim,
        /// Nested schedule.
        child: Box<ScheduleTree>,
    },
    /// Ordered composition.
    Sequence {
        /// Children in execution order.
        children: Vec<ScheduleTree>,
    },
    /// A statement instance (index into the SCoP's statement table).
    Leaf {
        /// Statement id.
        stmt: usize,
    },
    /// An annotation wrapper (e.g. `"point"` loops after tiling).
    Mark {
        /// Annotation name.
        name: String,
        /// Wrapped subtree.
        child: Box<ScheduleTree>,
    },
    /// Statements injected by a rewrite (runtime calls replacing a
    /// matched kernel), emitted verbatim by codegen.
    Extension {
        /// Injected IR statements.
        stmts: Vec<Stmt>,
    },
}

impl ScheduleTree {
    /// Wraps a child in a band.
    pub fn band(dim: BandDim, child: ScheduleTree) -> ScheduleTree {
        ScheduleTree::Band { dim, child: Box::new(child) }
    }

    /// Wraps a child in a mark.
    pub fn mark(name: impl Into<String>, child: ScheduleTree) -> ScheduleTree {
        ScheduleTree::Mark { name: name.into(), child: Box::new(child) }
    }

    /// Descends through a chain of bands (skipping marks), returning the
    /// dimensions outermost-first and the subtree below them.
    pub fn band_chain(&self) -> (Vec<&BandDim>, &ScheduleTree) {
        let mut dims = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                ScheduleTree::Band { dim, child } => {
                    dims.push(dim);
                    cur = child;
                }
                ScheduleTree::Mark { child, .. } => cur = child,
                _ => return (dims, cur),
            }
        }
    }

    /// All leaf statement ids in this subtree, in schedule order.
    pub fn leaf_stmts(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            ScheduleTree::Band { child, .. } | ScheduleTree::Mark { child, .. } => {
                child.collect_leaves(out)
            }
            ScheduleTree::Sequence { children } => {
                children.iter().for_each(|c| c.collect_leaves(out))
            }
            ScheduleTree::Leaf { stmt } => out.push(*stmt),
            ScheduleTree::Extension { .. } => {}
        }
    }

    /// Depth of the deepest band nesting.
    pub fn band_depth(&self) -> usize {
        match self {
            ScheduleTree::Band { child, .. } => 1 + child.band_depth(),
            ScheduleTree::Mark { child, .. } => child.band_depth(),
            ScheduleTree::Sequence { children } => {
                children.iter().map(|c| c.band_depth()).max().unwrap_or(0)
            }
            ScheduleTree::Leaf { .. } | ScheduleTree::Extension { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim(v: usize, hi: i64) -> BandDim {
        BandDim { var: VarId(v), lo: Expr::Int(0), hi: Expr::Int(hi), step: 1 }
    }

    #[test]
    fn band_chain_skips_marks() {
        let t = ScheduleTree::band(
            dim(0, 4),
            ScheduleTree::mark(
                "anno",
                ScheduleTree::band(dim(1, 8), ScheduleTree::Leaf { stmt: 0 }),
            ),
        );
        let (dims, inner) = t.band_chain();
        assert_eq!(dims.len(), 2);
        assert_eq!(dims[1].var, VarId(1));
        assert_eq!(inner, &ScheduleTree::Leaf { stmt: 0 });
    }

    #[test]
    fn leaf_collection_in_order() {
        let t = ScheduleTree::Sequence {
            children: vec![
                ScheduleTree::band(dim(0, 4), ScheduleTree::Leaf { stmt: 2 }),
                ScheduleTree::Leaf { stmt: 1 },
                ScheduleTree::Extension { stmts: vec![] },
            ],
        };
        assert_eq!(t.leaf_stmts(), vec![2, 1]);
    }

    #[test]
    fn band_depth_counts_nesting() {
        let t = ScheduleTree::band(
            dim(0, 4),
            ScheduleTree::band(dim(1, 4), ScheduleTree::Leaf { stmt: 0 }),
        );
        assert_eq!(t.band_depth(), 2);
        assert_eq!(ScheduleTree::Leaf { stmt: 0 }.band_depth(), 0);
    }
}
