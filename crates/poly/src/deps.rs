//! Region-based dependence analysis.
//!
//! The fusion legality rule of Section III-B: "Two kernels are independent
//! if Y doesn't read from or write to any output of X, and Y does not
//! write to any input of X." We evaluate it on rectangular over-
//! approximations of the access relations (interval arithmetic over affine
//! subscripts and loop domains) — conservative, like LLVM's region-based
//! dependence checks, and exact for the rectangular domains of the
//! PolyBench kernels.

use crate::scop::{LoopDim, ScopStmt};
use std::collections::HashMap;
use tdo_ir::affine::{AffineAccess, AffineExpr};
use tdo_ir::{ArrayId, VarId};

/// An inclusive rectangular region of one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Accessed array.
    pub array: ArrayId,
    /// Inclusive `(lo, hi)` per dimension; empty for scalars.
    pub bounds: Vec<(i64, i64)>,
}

impl Region {
    /// Whether two regions can touch the same element.
    pub fn overlaps(&self, other: &Region) -> bool {
        if self.array != other.array {
            return false;
        }
        // Scalars (no dims) always overlap themselves.
        self.bounds
            .iter()
            .zip(&other.bounds)
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }
}

/// Interval of an affine expression given variable intervals.
fn affine_interval(e: &AffineExpr, env: &HashMap<VarId, (i64, i64)>) -> (i64, i64) {
    let mut lo = e.constant;
    let mut hi = e.constant;
    for (v, c) in &e.terms {
        let (vlo, vhi) = env.get(v).copied().unwrap_or((i64::MIN / 4, i64::MAX / 4));
        if *c >= 0 {
            lo += c * vlo;
            hi += c * vhi;
        } else {
            lo += c * vhi;
            hi += c * vlo;
        }
    }
    (lo, hi)
}

/// Computes inclusive value intervals for every variable of a domain
/// (outer dimensions first, so inner bounds may reference outer vars).
pub fn domain_intervals(domain: &[LoopDim]) -> HashMap<VarId, (i64, i64)> {
    let mut env = HashMap::new();
    for d in domain {
        let (lb_lo, _) = affine_interval(&d.lb, &env);
        let (_, ub_hi) = affine_interval(&d.ub, &env);
        // var in [lb, ub): inclusive upper is ub-1.
        env.insert(d.var, (lb_lo, ub_hi - 1));
    }
    env
}

/// Rectangular over-approximation of one access over a domain.
pub fn access_region(domain: &[LoopDim], acc: &AffineAccess) -> Region {
    let env = domain_intervals(domain);
    Region { array: acc.array, bounds: acc.subs.iter().map(|s| affine_interval(s, &env)).collect() }
}

/// Write regions of a statement (a single write per statement).
pub fn write_region(stmt: &ScopStmt) -> Region {
    access_region(&stmt.domain, &stmt.write)
}

/// Read regions of a statement.
pub fn read_regions(stmt: &ScopStmt) -> Vec<Region> {
    stmt.reads.iter().map(|r| access_region(&stmt.domain, r)).collect()
}

/// The paper's kernel-independence test: given kernel X (earlier) and
/// kernel Y (later), Y must not read or write X's outputs, and must not
/// write X's inputs.
pub fn kernels_independent(x: &[&ScopStmt], y: &[&ScopStmt]) -> bool {
    let x_writes: Vec<Region> = x.iter().map(|s| write_region(s)).collect();
    let x_reads: Vec<Region> = x.iter().flat_map(|s| read_regions(s)).collect();
    for sy in y {
        let yw = write_region(sy);
        // Y writes X's output? (output dependence) or X's input? (anti)
        if x_writes.iter().any(|w| w.overlaps(&yw)) {
            return false;
        }
        if x_reads.iter().any(|r| r.overlaps(&yw)) {
            return false;
        }
        // Y reads X's output? (flow dependence)
        for ry in read_regions(sy) {
            if x_writes.iter().any(|w| w.overlaps(&ry)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scop::extract;
    use tdo_lang::compile;

    fn scop_of(src: &str) -> crate::scop::Scop {
        extract(&compile(src).expect("compiles")).expect("affine")
    }

    #[test]
    fn disjoint_halves_do_not_overlap() {
        let scop = scop_of(
            r#"
            float A[16];
            void kernel() {
              for (int i = 0; i < 8; i++) A[i] = 1.0;
              for (int i = 0; i < 8; i++) A[i + 8] = 2.0;
            }
            "#,
        );
        let w0 = write_region(&scop.stmts[0]);
        let w1 = write_region(&scop.stmts[1]);
        assert_eq!(w0.bounds, vec![(0, 7)]);
        assert_eq!(w1.bounds, vec![(8, 15)]);
        assert!(!w0.overlaps(&w1));
        assert!(kernels_independent(&[&scop.stmts[0]], &[&scop.stmts[1]]));
    }

    #[test]
    fn listing2_shared_input_kernels_are_independent() {
        // Two GEMMs reading the same A but writing different outputs.
        let scop = scop_of(
            r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float C[N][N]; float D[N][N]; float E[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    C[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += A[i][k] * E[k][j];
            }
            "#,
        );
        assert!(kernels_independent(&[&scop.stmts[0]], &[&scop.stmts[1]]));
    }

    #[test]
    fn flow_dependent_kernels_are_not_independent() {
        // Second GEMM consumes the first's output (2mm-style).
        let scop = scop_of(
            r#"
            const int N = 8;
            float A[N][N]; float B[N][N]; float T[N][N]; float D[N][N];
            void kernel() {
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    T[i][j] += A[i][k] * B[k][j];
              for (int i = 0; i < N; i++)
                for (int j = 0; j < N; j++)
                  for (int k = 0; k < N; k++)
                    D[i][j] += T[i][k] * B[k][j];
            }
            "#,
        );
        assert!(!kernels_independent(&[&scop.stmts[0]], &[&scop.stmts[1]]));
    }

    #[test]
    fn anti_dependence_detected() {
        // Y writes X's input.
        let scop = scop_of(
            r#"
            float A[8]; float B[8];
            void kernel() {
              for (int i = 0; i < 8; i++) B[i] = A[i];
              for (int i = 0; i < 8; i++) A[i] = 0.0;
            }
            "#,
        );
        assert!(!kernels_independent(&[&scop.stmts[0]], &[&scop.stmts[1]]));
    }

    #[test]
    fn scalar_reads_do_not_block_unless_written() {
        let scop = scop_of(
            r#"
            float alpha; float A[8]; float B[8];
            void kernel() {
              for (int i = 0; i < 8; i++) A[i] = alpha * 2.0;
              for (int i = 0; i < 8; i++) B[i] = alpha * 3.0;
            }
            "#,
        );
        assert!(kernels_independent(&[&scop.stmts[0]], &[&scop.stmts[1]]));
    }

    #[test]
    fn triangular_domain_intervals() {
        let scop = scop_of(
            r#"
            float A[8][8];
            void kernel() {
              for (int i = 0; i < 8; i++)
                for (int j = i; j < 8; j++)
                  A[i][j] = 1.0;
            }
            "#,
        );
        let env = domain_intervals(&scop.stmts[0].domain);
        let j = scop.stmts[0].domain[1].var;
        assert_eq!(env[&j], (0, 7));
    }
}
