//! # cim_report — machine-readable benchmark records
//!
//! Every evaluation artifact in this repository (the seven figure/table
//! binaries and the criterion micro-benchmark suites) can emit its
//! results as a `cim-bench-v1` JSON file next to its human-readable
//! output. The files serve two purposes:
//!
//! * **baselines** — `BENCH_<name>.json` files committed at the repo
//!   root record the expected modeled numbers and counter values;
//! * **perf gate** — the `bench_compare` binary (in `tdo_bench`) diffs a
//!   fresh run against the committed baseline with per-metric
//!   tolerances and exits nonzero on regression; CI runs it on every
//!   push (see `docs/BENCHMARKS.md`).
//!
//! The schema is deliberately small: a suite name plus a flat list of
//! [`BenchRecord`]s, each with the sweep configuration it ran under,
//! a wall-clock measurement, the modeled (simulated) time, the four
//! offload counters the paper's figures pivot on, and a tail of named
//! metrics. Everything is hand-rolled JSON ([`json`]) because the build
//! is fully offline — no serde.
//!
//! ## Comparison classes
//!
//! [`compare_records`] applies one rule per field:
//!
//! | field                     | rule                                 |
//! |---------------------------|--------------------------------------|
//! | counters (installs, ...)  | exact equality                       |
//! | `modeled_ns`              | relative tolerance 1e-9 (determinism)|
//! | `wall_ns`                 | ratio gate (default 3x, regressions only) |
//! | metric `*_wall_ns`        | same ratio gate                      |
//! | other metrics             | relative tolerance 1e-6              |
//!
//! Wall clock is the only nondeterministic field, so it gets a loose
//! multiplicative gate that catches order-of-magnitude regressions (a
//! lost fast path) without flapping on machine noise. Everything else
//! in the simulator is bit-deterministic and is held tight.

pub mod json;

use json::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// Schema identifier written to (and required from) every report file.
pub const SCHEMA: &str = "cim-bench-v1";

/// The sweep configuration a record was produced under. Fields that a
/// given suite does not sweep stay at their `Default` ("-", 1x1 grid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Device model name (`pcm`, `reram`, or `-`).
    pub device: String,
    /// Tile grid `(k_tiles, m_tiles)`.
    pub grid: (usize, usize),
    /// Dataset / problem-size name (`mini`..`xlarge`, or `-`).
    pub dataset: String,
    /// Dispatch schedule (`sync`, `async`, `serial`, ... or `-`).
    pub dispatch: String,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig { device: "-".into(), grid: (1, 1), dataset: "-".into(), dispatch: "-".into() }
    }
}

impl BenchConfig {
    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("device".into(), Value::Str(self.device.clone()));
        m.insert(
            "grid".into(),
            Value::Arr(vec![Value::Num(self.grid.0 as f64), Value::Num(self.grid.1 as f64)]),
        );
        m.insert("dataset".into(), Value::Str(self.dataset.clone()));
        m.insert("dispatch".into(), Value::Str(self.dispatch.clone()));
        Value::Obj(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_obj().ok_or("config must be an object")?;
        let field = |k: &str| -> Result<String, String> {
            obj.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("config.{k} must be a string"))
        };
        let grid = obj
            .get("grid")
            .and_then(Value::as_arr)
            .filter(|a| a.len() == 2)
            .and_then(|a| Some((a[0].as_num()? as usize, a[1].as_num()? as usize)))
            .ok_or("config.grid must be a [k, m] pair")?;
        Ok(BenchConfig {
            device: field("device")?,
            grid,
            dataset: field("dataset")?,
            dispatch: field("dispatch")?,
        })
    }
}

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchRecord {
    /// Record name, unique within its suite (kernel, schedule, bench id).
    pub name: String,
    /// Sweep configuration.
    pub config: BenchConfig,
    /// Host wall-clock nanoseconds spent producing this record — the
    /// only nondeterministic field.
    pub wall_ns: f64,
    /// Modeled (simulated) nanoseconds; 0 for records with no run.
    pub modeled_ns: f64,
    /// Crossbar rows programmed (stationary-operand installs).
    pub installs: u64,
    /// Installs skipped via operand residency.
    pub installs_skipped: u64,
    /// Device-to-host syncs hoisted by the offload dataflow graph.
    pub hoisted_syncs: u64,
    /// Most physical tiles concurrently active in any wave.
    pub max_tiles_active: u64,
    /// Named metric tail (energies, improvement ratios, panel counts...),
    /// keyed canonically (sorted). Keys ending in `_wall_ns` are compared
    /// with the loose wall gate.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// A record with just a name; fill the rest with struct update.
    pub fn named(name: impl Into<String>) -> Self {
        BenchRecord { name: name.into(), ..BenchRecord::default() }
    }

    /// Appends a named metric (builder style).
    #[must_use]
    pub fn with_metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.insert(key.into(), value);
        self
    }

    fn to_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("name".into(), Value::Str(self.name.clone()));
        m.insert("config".into(), self.config.to_value());
        m.insert("wall_ns".into(), Value::Num(self.wall_ns));
        m.insert("modeled_ns".into(), Value::Num(self.modeled_ns));
        m.insert("installs".into(), Value::Num(self.installs as f64));
        m.insert("installs_skipped".into(), Value::Num(self.installs_skipped as f64));
        m.insert("hoisted_syncs".into(), Value::Num(self.hoisted_syncs as f64));
        m.insert("max_tiles_active".into(), Value::Num(self.max_tiles_active as f64));
        m.insert(
            "metrics".into(),
            Value::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), Value::Num(*v))).collect()),
        );
        Value::Obj(m)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let obj = v.as_obj().ok_or("record must be an object")?;
        let num = |k: &str| -> Result<f64, String> {
            obj.get(k).and_then(Value::as_num).ok_or_else(|| format!("record.{k} must be a number"))
        };
        let count = |k: &str| -> Result<u64, String> {
            let n = num(k)?;
            if n.is_finite() && n >= 0.0 && n == n.trunc() {
                Ok(n as u64)
            } else {
                Err(format!("record.{k} must be a non-negative integer, got {n}"))
            }
        };
        let name = obj
            .get("name")
            .and_then(Value::as_str)
            .ok_or("record.name must be a string")?
            .to_string();
        let config =
            BenchConfig::from_value(obj.get("config").ok_or("record.config is required")?)?;
        let metrics = obj
            .get("metrics")
            .and_then(Value::as_obj)
            .ok_or("record.metrics must be an object")?
            .iter()
            .map(|(k, v)| {
                v.as_num()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("metric {k} must be a number"))
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        Ok(BenchRecord {
            name,
            config,
            wall_ns: num("wall_ns")?,
            modeled_ns: num("modeled_ns")?,
            installs: count("installs")?,
            installs_skipped: count("installs_skipped")?,
            hoisted_syncs: count("hoisted_syncs")?,
            max_tiles_active: count("max_tiles_active")?,
            metrics,
        })
    }
}

/// A suite of records — the unit one `BENCH_<suite>.json` file holds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Suite name (`fig6_edp`, `bench_pipeline`, ...).
    pub suite: String,
    /// Records, in emission order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for a suite.
    pub fn new(suite: impl Into<String>) -> Self {
        BenchReport { suite: suite.into(), records: Vec::new() }
    }

    /// Appends a record.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// Serializes to the `cim-bench-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut m = BTreeMap::new();
        m.insert("schema".into(), Value::Str(SCHEMA.into()));
        m.insert("suite".into(), Value::Str(self.suite.clone()));
        m.insert("records".into(), Value::Arr(self.records.iter().map(|r| r.to_value()).collect()));
        Value::Obj(m).to_pretty()
    }

    /// Parses and schema-validates a `cim-bench-v1` document.
    ///
    /// # Errors
    ///
    /// Malformed JSON, wrong/missing schema tag, missing fields, wrong
    /// field types, or duplicate record names.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let obj = v.as_obj().ok_or("document must be an object")?;
        match obj.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema '{s}' (expected '{SCHEMA}')")),
            None => return Err("missing schema tag".into()),
        }
        let suite =
            obj.get("suite").and_then(Value::as_str).ok_or("suite must be a string")?.to_string();
        let records = obj
            .get("records")
            .and_then(Value::as_arr)
            .ok_or("records must be an array")?
            .iter()
            .map(BenchRecord::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let mut seen = std::collections::BTreeSet::new();
        for r in &records {
            if !seen.insert(&r.name) {
                return Err(format!("duplicate record name '{}'", r.name));
            }
        }
        Ok(BenchReport { suite, records })
    }

    /// Writes the report to `path` (the conventional name is
    /// `BENCH_<suite>.json`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads and validates a report file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and anything [`BenchReport::parse`] rejects,
    /// as text.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// The conventional file name for this suite.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }
}

/// Tolerances the perf gate applies; see the module docs for the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance on modeled (deterministic) values.
    pub modeled_rel: f64,
    /// Relative tolerance on derived metrics (ratios, energies).
    pub metric_rel: f64,
    /// Wall-clock gate: fresh regresses when `fresh > base * wall_factor`.
    pub wall_factor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { modeled_rel: 1e-9, metric_rel: 1e-6, wall_factor: 3.0 }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Suite the record belongs to.
    pub suite: String,
    /// Record name.
    pub record: String,
    /// Field or metric key that regressed.
    pub field: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Human-readable rule that failed.
    pub rule: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} = {} vs baseline {} ({})",
            self.suite, self.record, self.field, self.fresh, self.baseline, self.rule
        )
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0.0;
    }
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

/// Compares a fresh record against its baseline, appending regressions.
/// `name` collisions are the caller's problem — records are matched
/// before calling this.
pub fn compare_records(
    suite: &str,
    base: &BenchRecord,
    fresh: &BenchRecord,
    tol: &Tolerances,
    out: &mut Vec<Regression>,
) {
    let mut push = |field: &str, b: f64, f: f64, rule: String| {
        out.push(Regression {
            suite: suite.into(),
            record: base.name.clone(),
            field: field.into(),
            baseline: b,
            fresh: f,
            rule,
        });
    };
    if base.config != fresh.config {
        push("config", 0.0, 0.0, "sweep configuration changed".into());
    }
    for (field, b, f) in [
        ("installs", base.installs, fresh.installs),
        ("installs_skipped", base.installs_skipped, fresh.installs_skipped),
        ("hoisted_syncs", base.hoisted_syncs, fresh.hoisted_syncs),
        ("max_tiles_active", base.max_tiles_active, fresh.max_tiles_active),
    ] {
        if b != f {
            push(field, b as f64, f as f64, "counter must match exactly".into());
        }
    }
    if rel_diff(base.modeled_ns, fresh.modeled_ns) > tol.modeled_rel {
        push(
            "modeled_ns",
            base.modeled_ns,
            fresh.modeled_ns,
            format!("modeled time drifted beyond rel {:.0e}", tol.modeled_rel),
        );
    }
    let wall_gate = |b: f64, f: f64| f.is_nan() || (b > 0.0 && f > b * tol.wall_factor);
    if wall_gate(base.wall_ns, fresh.wall_ns) {
        push(
            "wall_ns",
            base.wall_ns,
            fresh.wall_ns,
            format!("wall clock regressed beyond {}x", tol.wall_factor),
        );
    }
    for (k, b) in &base.metrics {
        let Some(f) = fresh.metrics.get(k) else {
            push(k, *b, f64::NAN, "metric missing from fresh run".into());
            continue;
        };
        if k.ends_with("_wall_ns") {
            if wall_gate(*b, *f) {
                push(k, *b, *f, format!("wall clock regressed beyond {}x", tol.wall_factor));
            }
        } else if rel_diff(*b, *f) > tol.metric_rel {
            push(k, *b, *f, format!("metric drifted beyond rel {:.0e}", tol.metric_rel));
        }
    }
}

/// Compares two whole reports. Records present only in the fresh run
/// are fine (new coverage); records missing from the fresh run are
/// regressions.
pub fn compare_reports(
    base: &BenchReport,
    fresh: &BenchReport,
    tol: &Tolerances,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let fresh_by_name: BTreeMap<&str, &BenchRecord> =
        fresh.records.iter().map(|r| (r.name.as_str(), r)).collect();
    for b in &base.records {
        match fresh_by_name.get(b.name.as_str()) {
            Some(f) => compare_records(&base.suite, b, f, tol, &mut out),
            None => out.push(Regression {
                suite: base.suite.clone(),
                record: b.name.clone(),
                field: "record".into(),
                baseline: 0.0,
                fresh: 0.0,
                rule: "record missing from fresh run".into(),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut rep = BenchReport::new("fig_test");
        rep.push(BenchRecord {
            name: "gemm".into(),
            config: BenchConfig {
                device: "pcm".into(),
                grid: (2, 2),
                dataset: "medium".into(),
                dispatch: "async".into(),
            },
            wall_ns: 1.5e6,
            modeled_ns: 2.25e9,
            installs: 1024,
            installs_skipped: 96,
            hoisted_syncs: 3,
            max_tiles_active: 4,
            metrics: [("energy_mj".to_string(), 12.5), ("edp_improvement_x".to_string(), 612.0)]
                .into_iter()
                .collect(),
        });
        rep.push(BenchRecord::named("mvt").with_metric("runtime_improvement_x", 0.5));
        rep
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let rep = sample();
        let text = rep.to_json();
        let back = BenchReport::parse(&text).expect("parses");
        assert_eq!(rep, back);
        // Stable serialization: a second trip is byte-identical.
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn schema_tag_is_enforced() {
        let text = sample().to_json().replace(SCHEMA, "cim-bench-v0");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(BenchReport::parse("{}").is_err());
        assert!(BenchReport::parse("not json").is_err());
    }

    #[test]
    fn duplicate_record_names_rejected() {
        let mut rep = sample();
        rep.push(BenchRecord::named("gemm"));
        let err = BenchReport::parse(&rep.to_json()).unwrap_err();
        assert!(err.contains("duplicate record name"), "{err}");
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let rep = sample();
        assert!(compare_reports(&rep, &rep, &Tolerances::default()).is_empty());
    }

    #[test]
    fn counter_change_is_a_regression() {
        let base = sample();
        let mut fresh = base.clone();
        fresh.records[0].installs += 1;
        let regs = compare_reports(&base, &fresh, &Tolerances::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "installs");
    }

    #[test]
    fn modeled_time_is_held_tight_but_wall_is_loose() {
        let base = sample();
        let tol = Tolerances::default();
        // 1% modeled drift: regression.
        let mut fresh = base.clone();
        fresh.records[0].modeled_ns *= 1.01;
        assert_eq!(compare_reports(&base, &fresh, &tol).len(), 1);
        // 2x wall drift: fine (within the 3x gate).
        let mut fresh = base.clone();
        fresh.records[0].wall_ns *= 2.0;
        assert!(compare_reports(&base, &fresh, &tol).is_empty());
        // 4x wall drift: regression.
        fresh.records[0].wall_ns = base.records[0].wall_ns * 4.0;
        let regs = compare_reports(&base, &fresh, &tol);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "wall_ns");
        // Faster wall clock is never a regression.
        let mut fresh = base.clone();
        fresh.records[0].wall_ns *= 0.01;
        assert!(compare_reports(&base, &fresh, &tol).is_empty());
    }

    #[test]
    fn missing_record_and_metric_are_regressions() {
        let base = sample();
        let mut fresh = base.clone();
        fresh.records.pop();
        let regs = compare_reports(&base, &fresh, &Tolerances::default());
        assert_eq!(regs.len(), 1);
        assert!(regs[0].rule.contains("missing"));

        let mut fresh = base.clone();
        fresh.records[0].metrics.remove("energy_mj");
        let regs = compare_reports(&base, &fresh, &Tolerances::default());
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].field, "energy_mj");
    }

    #[test]
    fn extra_fresh_records_are_not_regressions() {
        let base = sample();
        let mut fresh = base.clone();
        fresh.push(BenchRecord::named("new-coverage"));
        assert!(compare_reports(&base, &fresh, &Tolerances::default()).is_empty());
    }

    #[test]
    fn file_round_trip() {
        let rep = sample();
        let dir = std::env::temp_dir().join("cim_report_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join(rep.file_name());
        rep.write(&path).expect("writes");
        let back = BenchReport::read(&path).expect("reads");
        assert_eq!(rep, back);
        std::fs::remove_file(&path).ok();
    }
}
