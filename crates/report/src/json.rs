//! Minimal JSON reader/writer.
//!
//! The evaluation harness runs fully offline, so instead of `serde` the
//! `cim-bench-v1` files go through this hand-rolled implementation. It
//! covers the whole JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null) but none of serde's derive machinery — the
//! schema layer in `lib.rs` maps [`Value`] trees by hand.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are ordered (BTreeMap) so emission
/// is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as f64 (the schema stores counters below
    /// 2^53, where f64 is exact).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number; `null` reads as NaN (how non-finite
    /// metrics are serialized).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation (the files are committed as
    /// baselines, so they should diff well).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Short scalar arrays (e.g. a grid pair) stay on one line.
                let scalar = items.iter().all(|v| !matches!(v, Value::Arr(_) | Value::Obj(_)));
                if scalar && items.len() <= 4 {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write(out, indent);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    v.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Value::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; non-finite metrics round-trip as null.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with byte offset on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates never appear in our own output; map
                        // them to the replacement character on input.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 character.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_value_kinds() {
        let text = r#"{"a": [1, 2.5, -3], "b": "x\"y\n", "c": true, "d": null, "e": {}}"#;
        let v = parse(text).expect("parses");
        let again = parse(&v.to_pretty()).expect("re-parses");
        assert_eq!(v, again);
    }

    #[test]
    fn numbers_stay_exact() {
        let v = parse("[123456789012345, 0.015625, 1e-9]").expect("parses");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr[0].as_num(), Some(123456789012345.0));
        assert_eq!(arr[1].as_num(), Some(0.015625));
        assert_eq!(arr[2].as_num(), Some(1e-9));
    }

    #[test]
    fn non_finite_serializes_as_null() {
        let v = Value::Arr(vec![Value::Num(f64::NAN), Value::Num(f64::INFINITY)]);
        let text = v.to_pretty();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        let back = parse(&text).expect("parses");
        assert!(back.as_arr().expect("arr")[0].as_num().expect("num").is_nan());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }
}
